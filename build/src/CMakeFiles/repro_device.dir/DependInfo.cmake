
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device_table.cpp" "src/CMakeFiles/repro_device.dir/device/device_table.cpp.o" "gcc" "src/CMakeFiles/repro_device.dir/device/device_table.cpp.o.d"
  "/root/repo/src/device/grid2d.cpp" "src/CMakeFiles/repro_device.dir/device/grid2d.cpp.o" "gcc" "src/CMakeFiles/repro_device.dir/device/grid2d.cpp.o.d"
  "/root/repo/src/device/models.cpp" "src/CMakeFiles/repro_device.dir/device/models.cpp.o" "gcc" "src/CMakeFiles/repro_device.dir/device/models.cpp.o.d"
  "/root/repo/src/device/mosfet_model.cpp" "src/CMakeFiles/repro_device.dir/device/mosfet_model.cpp.o" "gcc" "src/CMakeFiles/repro_device.dir/device/mosfet_model.cpp.o.d"
  "/root/repo/src/device/table_builder.cpp" "src/CMakeFiles/repro_device.dir/device/table_builder.cpp.o" "gcc" "src/CMakeFiles/repro_device.dir/device/table_builder.cpp.o.d"
  "/root/repo/src/device/tfet_model.cpp" "src/CMakeFiles/repro_device.dir/device/tfet_model.cpp.o" "gcc" "src/CMakeFiles/repro_device.dir/device/tfet_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
