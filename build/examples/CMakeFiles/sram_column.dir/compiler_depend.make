# Empty compiler generated dependencies file for sram_column.
# This may be replaced when dependencies are built.
