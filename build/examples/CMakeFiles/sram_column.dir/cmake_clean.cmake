file(REMOVE_RECURSE
  "CMakeFiles/sram_column.dir/sram_column.cpp.o"
  "CMakeFiles/sram_column.dir/sram_column.cpp.o.d"
  "sram_column"
  "sram_column.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sram_column.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
