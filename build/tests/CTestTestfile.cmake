# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_la[1]_include.cmake")
include("/root/repo/build/tests/test_waveform[1]_include.cmake")
include("/root/repo/build/tests/test_spice_dc[1]_include.cmake")
include("/root/repo/build/tests/test_spice_transient[1]_include.cmake")
include("/root/repo/build/tests/test_tfet_model[1]_include.cmake")
include("/root/repo/build/tests/test_mosfet_model[1]_include.cmake")
include("/root/repo/build/tests/test_device_table[1]_include.cmake")
include("/root/repo/build/tests/test_assist[1]_include.cmake")
include("/root/repo/build/tests/test_cell[1]_include.cmake")
include("/root/repo/build/tests/test_operations[1]_include.cmake")
include("/root/repo/build/tests/test_sram_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_metrics_area[1]_include.cmake")
include("/root/repo/build/tests/test_mc[1]_include.cmake")
include("/root/repo/build/tests/test_explorer[1]_include.cmake")
include("/root/repo/build/tests/test_regressions[1]_include.cmake")
include("/root/repo/build/tests/test_snm[1]_include.cmake")
include("/root/repo/build/tests/test_spice_misc[1]_include.cmake")
include("/root/repo/build/tests/test_temperature[1]_include.cmake")
include("/root/repo/build/tests/test_array[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_spice_ac[1]_include.cmake")
include("/root/repo/build/tests/test_energy_drv[1]_include.cmake")
include("/root/repo/build/tests/test_signoff[1]_include.cmake")
include("/root/repo/build/tests/test_statistics[1]_include.cmake")
include("/root/repo/build/tests/test_periphery[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
