# Empty compiler generated dependencies file for test_periphery.
# This may be replaced when dependencies are built.
