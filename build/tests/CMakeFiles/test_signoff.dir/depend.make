# Empty dependencies file for test_signoff.
# This may be replaced when dependencies are built.
