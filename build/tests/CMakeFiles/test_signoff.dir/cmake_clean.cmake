file(REMOVE_RECURSE
  "CMakeFiles/test_signoff.dir/test_signoff.cpp.o"
  "CMakeFiles/test_signoff.dir/test_signoff.cpp.o.d"
  "test_signoff"
  "test_signoff.pdb"
  "test_signoff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
