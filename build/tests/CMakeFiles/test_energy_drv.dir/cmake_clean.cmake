file(REMOVE_RECURSE
  "CMakeFiles/test_energy_drv.dir/test_energy_drv.cpp.o"
  "CMakeFiles/test_energy_drv.dir/test_energy_drv.cpp.o.d"
  "test_energy_drv"
  "test_energy_drv.pdb"
  "test_energy_drv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_drv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
