# Empty dependencies file for test_energy_drv.
# This may be replaced when dependencies are built.
