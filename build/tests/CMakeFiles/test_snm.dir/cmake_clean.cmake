file(REMOVE_RECURSE
  "CMakeFiles/test_snm.dir/test_snm.cpp.o"
  "CMakeFiles/test_snm.dir/test_snm.cpp.o.d"
  "test_snm"
  "test_snm.pdb"
  "test_snm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
