# Empty dependencies file for test_snm.
# This may be replaced when dependencies are built.
