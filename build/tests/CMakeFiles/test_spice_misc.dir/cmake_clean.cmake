file(REMOVE_RECURSE
  "CMakeFiles/test_spice_misc.dir/test_spice_misc.cpp.o"
  "CMakeFiles/test_spice_misc.dir/test_spice_misc.cpp.o.d"
  "test_spice_misc"
  "test_spice_misc.pdb"
  "test_spice_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
