# Empty dependencies file for test_metrics_area.
# This may be replaced when dependencies are built.
