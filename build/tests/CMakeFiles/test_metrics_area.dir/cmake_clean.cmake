file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_area.dir/test_metrics_area.cpp.o"
  "CMakeFiles/test_metrics_area.dir/test_metrics_area.cpp.o.d"
  "test_metrics_area"
  "test_metrics_area.pdb"
  "test_metrics_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
