# Empty dependencies file for test_assist.
# This may be replaced when dependencies are built.
