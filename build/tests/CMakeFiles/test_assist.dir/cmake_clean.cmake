file(REMOVE_RECURSE
  "CMakeFiles/test_assist.dir/test_assist.cpp.o"
  "CMakeFiles/test_assist.dir/test_assist.cpp.o.d"
  "test_assist"
  "test_assist.pdb"
  "test_assist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
