# Empty dependencies file for test_sram_behavior.
# This may be replaced when dependencies are built.
