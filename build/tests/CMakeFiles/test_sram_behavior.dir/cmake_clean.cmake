file(REMOVE_RECURSE
  "CMakeFiles/test_sram_behavior.dir/test_sram_behavior.cpp.o"
  "CMakeFiles/test_sram_behavior.dir/test_sram_behavior.cpp.o.d"
  "test_sram_behavior"
  "test_sram_behavior.pdb"
  "test_sram_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sram_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
