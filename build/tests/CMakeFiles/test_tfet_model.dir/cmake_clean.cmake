file(REMOVE_RECURSE
  "CMakeFiles/test_tfet_model.dir/test_tfet_model.cpp.o"
  "CMakeFiles/test_tfet_model.dir/test_tfet_model.cpp.o.d"
  "test_tfet_model"
  "test_tfet_model.pdb"
  "test_tfet_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfet_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
