# Empty compiler generated dependencies file for test_device_table.
# This may be replaced when dependencies are built.
