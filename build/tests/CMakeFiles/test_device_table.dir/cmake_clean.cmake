file(REMOVE_RECURSE
  "CMakeFiles/test_device_table.dir/test_device_table.cpp.o"
  "CMakeFiles/test_device_table.dir/test_device_table.cpp.o.d"
  "test_device_table"
  "test_device_table.pdb"
  "test_device_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
