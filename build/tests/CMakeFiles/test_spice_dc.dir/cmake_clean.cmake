file(REMOVE_RECURSE
  "CMakeFiles/test_spice_dc.dir/test_spice_dc.cpp.o"
  "CMakeFiles/test_spice_dc.dir/test_spice_dc.cpp.o.d"
  "test_spice_dc"
  "test_spice_dc.pdb"
  "test_spice_dc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
