file(REMOVE_RECURSE
  "CMakeFiles/test_array.dir/test_array.cpp.o"
  "CMakeFiles/test_array.dir/test_array.cpp.o.d"
  "test_array"
  "test_array.pdb"
  "test_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
