file(REMOVE_RECURSE
  "CMakeFiles/half_select_study.dir/half_select_study.cpp.o"
  "CMakeFiles/half_select_study.dir/half_select_study.cpp.o.d"
  "half_select_study"
  "half_select_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/half_select_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
