# Empty dependencies file for half_select_study.
# This may be replaced when dependencies are built.
