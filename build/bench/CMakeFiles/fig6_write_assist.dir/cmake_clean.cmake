file(REMOVE_RECURSE
  "CMakeFiles/fig6_write_assist.dir/fig6_write_assist.cpp.o"
  "CMakeFiles/fig6_write_assist.dir/fig6_write_assist.cpp.o.d"
  "fig6_write_assist"
  "fig6_write_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_write_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
