# Empty compiler generated dependencies file for fig6_write_assist.
# This may be replaced when dependencies are built.
