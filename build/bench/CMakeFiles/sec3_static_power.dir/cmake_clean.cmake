file(REMOVE_RECURSE
  "CMakeFiles/sec3_static_power.dir/sec3_static_power.cpp.o"
  "CMakeFiles/sec3_static_power.dir/sec3_static_power.cpp.o.d"
  "sec3_static_power"
  "sec3_static_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_static_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
