# Empty dependencies file for sec3_static_power.
# This may be replaced when dependencies are built.
