file(REMOVE_RECURSE
  "CMakeFiles/ablation_assist_energy.dir/ablation_assist_energy.cpp.o"
  "CMakeFiles/ablation_assist_energy.dir/ablation_assist_energy.cpp.o.d"
  "ablation_assist_energy"
  "ablation_assist_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_assist_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
