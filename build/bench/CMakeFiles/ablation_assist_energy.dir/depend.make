# Empty dependencies file for ablation_assist_energy.
# This may be replaced when dependencies are built.
