# Empty dependencies file for ablation_assist_strength.
# This may be replaced when dependencies are built.
