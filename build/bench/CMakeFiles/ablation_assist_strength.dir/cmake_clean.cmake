file(REMOVE_RECURSE
  "CMakeFiles/ablation_assist_strength.dir/ablation_assist_strength.cpp.o"
  "CMakeFiles/ablation_assist_strength.dir/ablation_assist_strength.cpp.o.d"
  "ablation_assist_strength"
  "ablation_assist_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_assist_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
