# Empty dependencies file for fig8_assist_tradeoff.
# This may be replaced when dependencies are built.
