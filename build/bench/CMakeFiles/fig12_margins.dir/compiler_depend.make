# Empty compiler generated dependencies file for fig12_margins.
# This may be replaced when dependencies are built.
