file(REMOVE_RECURSE
  "CMakeFiles/fig12_margins.dir/fig12_margins.cpp.o"
  "CMakeFiles/fig12_margins.dir/fig12_margins.cpp.o.d"
  "fig12_margins"
  "fig12_margins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_margins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
