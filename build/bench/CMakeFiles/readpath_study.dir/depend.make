# Empty dependencies file for readpath_study.
# This may be replaced when dependencies are built.
