file(REMOVE_RECURSE
  "CMakeFiles/readpath_study.dir/readpath_study.cpp.o"
  "CMakeFiles/readpath_study.dir/readpath_study.cpp.o.d"
  "readpath_study"
  "readpath_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readpath_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
