file(REMOVE_RECURSE
  "CMakeFiles/fig10_mc_read_assist.dir/fig10_mc_read_assist.cpp.o"
  "CMakeFiles/fig10_mc_read_assist.dir/fig10_mc_read_assist.cpp.o.d"
  "fig10_mc_read_assist"
  "fig10_mc_read_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mc_read_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
