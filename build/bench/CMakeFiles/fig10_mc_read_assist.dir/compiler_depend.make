# Empty compiler generated dependencies file for fig10_mc_read_assist.
# This may be replaced when dependencies are built.
