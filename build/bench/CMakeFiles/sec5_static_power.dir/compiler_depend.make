# Empty compiler generated dependencies file for sec5_static_power.
# This may be replaced when dependencies are built.
