file(REMOVE_RECURSE
  "CMakeFiles/sec5_static_power.dir/sec5_static_power.cpp.o"
  "CMakeFiles/sec5_static_power.dir/sec5_static_power.cpp.o.d"
  "sec5_static_power"
  "sec5_static_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_static_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
