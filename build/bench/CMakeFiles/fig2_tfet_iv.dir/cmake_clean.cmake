file(REMOVE_RECURSE
  "CMakeFiles/fig2_tfet_iv.dir/fig2_tfet_iv.cpp.o"
  "CMakeFiles/fig2_tfet_iv.dir/fig2_tfet_iv.cpp.o.d"
  "fig2_tfet_iv"
  "fig2_tfet_iv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tfet_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
