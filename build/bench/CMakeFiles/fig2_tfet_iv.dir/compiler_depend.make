# Empty compiler generated dependencies file for fig2_tfet_iv.
# This may be replaced when dependencies are built.
