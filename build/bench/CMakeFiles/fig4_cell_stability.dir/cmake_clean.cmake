file(REMOVE_RECURSE
  "CMakeFiles/fig4_cell_stability.dir/fig4_cell_stability.cpp.o"
  "CMakeFiles/fig4_cell_stability.dir/fig4_cell_stability.cpp.o.d"
  "fig4_cell_stability"
  "fig4_cell_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cell_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
