# Empty compiler generated dependencies file for fig4_cell_stability.
# This may be replaced when dependencies are built.
