
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sec5_area.cpp" "bench/CMakeFiles/sec5_area.dir/sec5_area.cpp.o" "gcc" "bench/CMakeFiles/sec5_area.dir/sec5_area.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_array.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
