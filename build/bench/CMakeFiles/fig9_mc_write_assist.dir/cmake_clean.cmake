file(REMOVE_RECURSE
  "CMakeFiles/fig9_mc_write_assist.dir/fig9_mc_write_assist.cpp.o"
  "CMakeFiles/fig9_mc_write_assist.dir/fig9_mc_write_assist.cpp.o.d"
  "fig9_mc_write_assist"
  "fig9_mc_write_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mc_write_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
