# Empty compiler generated dependencies file for fig9_mc_write_assist.
# This may be replaced when dependencies are built.
