file(REMOVE_RECURSE
  "CMakeFiles/array_scaling.dir/array_scaling.cpp.o"
  "CMakeFiles/array_scaling.dir/array_scaling.cpp.o.d"
  "array_scaling"
  "array_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
