# Empty compiler generated dependencies file for array_scaling.
# This may be replaced when dependencies are built.
