# Empty compiler generated dependencies file for fig7_read_assist.
# This may be replaced when dependencies are built.
