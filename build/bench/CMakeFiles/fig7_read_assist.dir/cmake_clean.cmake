file(REMOVE_RECURSE
  "CMakeFiles/fig7_read_assist.dir/fig7_read_assist.cpp.o"
  "CMakeFiles/fig7_read_assist.dir/fig7_read_assist.cpp.o.d"
  "fig7_read_assist"
  "fig7_read_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_read_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
