#!/usr/bin/env bash
# CI entry point: standard RelWithDebInfo build + full ctest, then a
# ThreadSanitizer build running the concurrent subsystem's tests (the
# task-graph scheduler, thread pool, result cache, and the Monte-Carlo
# engine that fans out through the shared pool).
#
# Usage: ./ci.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== build (RelWithDebInfo) ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTFETSRAM_WERROR=ON
cmake --build build -j "$JOBS"

echo "=== ctest ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "=== tsan job skipped ==="
  exit 0
fi

echo "=== build (ThreadSanitizer) ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTFETSRAM_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target test_runner test_mc

echo "=== tsan: scheduler/cache/pool tests ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_runner
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_mc

echo "=== ci.sh: all green ==="
