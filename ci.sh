#!/usr/bin/env bash
# CI entry point: a lint pinning all environment access to util/env, then
# the standard RelWithDebInfo build + full ctest, a
# fault-injection job exercising the keep-going/quarantine path end to end,
# the solver microbenchmark (cache off, so every counter in the log is a
# fresh measurement — docs/SOLVER.md), a cell-zoo job qualifying every
# registered cell spec through signoff and the corner-sweep bench
# (docs/CELLZOO.md), an ASan+UBSan build running the
# linear-kernel suites (the sparse LU's pointer-chasing DFS and in-place
# pivoting are exactly the code sanitizers exist for) plus the netlist
# parser suite, then a
# ThreadSanitizer build running the concurrent subsystem's tests
# (the task-graph scheduler, thread pool, result cache, the Monte-Carlo
# engine that fans out through the shared pool, and the fault-injection
# suite, whose retry/censor/quarantine paths race by construction).
#
# The mixed-vs-flat differential lane (docs/HIERARCHY.md) rides both
# sanitizer jobs: the ASan+UBSan build runs the `diff`-labelled harnesses
# (sparse-vs-dense kernel parity AND mixed-vs-flat engine parity), and the
# TSan build runs the hier unit suite, whose counter contracts flow through
# the ambient per-thread SolverStats the context tests race on.
#
# Usage: ./ci.sh [--skip-tsan] [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_TSAN=0
SKIP_ASAN=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-asan" ]] && SKIP_ASAN=1
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== lint: environment access goes through util/env ==="
# env::raw() in src/util/env.cpp is the repo's only sanctioned call into
# the libc environment accessor; everything else must use the typed
# env::get_* helpers or EnvSnapshot so TFETSRAM_* knobs stay defaults
# layered under programmatic config (docs/ARCHITECTURE.md).
STRAYS="$(grep -rn 'getenv *(' src bench examples tests --include='*.cpp' --include='*.hpp' | grep -v '^src/util/env\.cpp:' || true)"
if [[ -n "$STRAYS" ]]; then
  echo "direct getenv() outside src/util/env.cpp:" >&2
  echo "$STRAYS" >&2
  exit 1
fi
echo "env access centralized"

echo "=== build (RelWithDebInfo) ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTFETSRAM_WERROR=ON
cmake --build build -j "$JOBS"

echo "=== ctest ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== fault injection: degraded keep-going run ==="
# Force one sweep point's DC solve to fail; the run must still complete,
# quarantine the task, and mark the BENCH artifact degraded (see
# docs/ROBUSTNESS.md).
FAULT_OUT="build/ci_fault_out"
rm -rf "$FAULT_OUT"
# Single-threaded so the faulted dc-solve indices land deterministically in
# one sweep task (a lone failed solve is absorbed by the hold-state
# fallbacks — six consecutive ones guarantee a censor-worthy failure).
TFETSRAM_THREADS=1 TFETSRAM_FAULTS="dc@50,51,52,53,54,55" \
  TFETSRAM_KEEP_GOING=1 TFETSRAM_CACHE=off \
  TFETSRAM_OUT_DIR="$FAULT_OUT" \
  ./build/bench/run_all fig6_write_assist >/dev/null
grep -q '"degraded":true' "$FAULT_OUT"/BENCH_fig6_write_assist.json
grep -q '"cache":"quarantined"' "$FAULT_OUT"/fig6_write_assist_journal.jsonl
echo "degraded run journaled and marked as expected"

echo "=== fault injection: watchdog cancels a stalled task ==="
# Park one sweep task in the stall fault site; the runner's watchdog must
# notice the flatlined heartbeat, cancel the attempt through its token,
# quarantine the task, and let the rest of the run complete degraded
# (docs/ROBUSTNESS.md).
STALL_OUT="build/ci_stall_out"
rm -rf "$STALL_OUT"
TFETSRAM_THREADS=2 TFETSRAM_FAULTS="stall@0" \
  TFETSRAM_STALL_TIMEOUT=0.3 TFETSRAM_RETRIES=1 \
  TFETSRAM_KEEP_GOING=1 TFETSRAM_CACHE=off \
  TFETSRAM_OUT_DIR="$STALL_OUT" \
  ./build/bench/run_all fig6_write_assist >/dev/null
grep -q '"degraded":true' "$STALL_OUT"/BENCH_fig6_write_assist.json
grep -q '"watchdog":"stall"' "$STALL_OUT"/fig6_write_assist_journal.jsonl
echo "stalled task detected, cancelled, and quarantined as expected"

echo "=== microbench: solver hot-path counters ==="
# Cache off: counters must be measured, not replayed (docs/SOLVER.md).
BENCH_OUT="build/ci_bench_out"
rm -rf "$BENCH_OUT"
TFETSRAM_CACHE=off TFETSRAM_OUT_DIR="$BENCH_OUT" ./build/bench/microbench
grep -q '"failed":0' "$BENCH_OUT"/BENCH_microbench.json
echo "microbench counters recorded in $BENCH_OUT/BENCH_microbench.json"

echo "=== microbench: array64x64 wall regression gate ==="
# The sparse-kernel scale workload must stay within 1.5x of the
# checked-in baseline wall (bench_csv/BENCH_microbench.json, measured on
# the machine class that recorded it — the generous factor absorbs run
# noise while still catching an ordering/fast-path regression, which
# costs well over 2x at this size; docs/SOLVER.md).
extract_wall() {
  sed -n 's/.*"task_wall_s":{[^}]*"'"$2"'":\([0-9.eE+-]*\).*/\1/p' "$1"
}
gate_wall() {
  local workload="$1"
  local base fresh
  base="$(extract_wall bench_csv/BENCH_microbench.json "$workload")"
  fresh="$(extract_wall "$BENCH_OUT"/BENCH_microbench.json "$workload")"
  if [[ -z "$base" || -z "$fresh" ]]; then
    echo "$workload wall missing from BENCH artifact" >&2
    exit 1
  fi
  if ! awk -v fresh="$fresh" -v base="$base" \
      'BEGIN { exit !(fresh <= 1.5 * base) }'; then
    echo "$workload regressed: ${fresh}s vs baseline ${base}s (>1.5x)" >&2
    exit 1
  fi
  echo "$workload wall ${fresh}s within 1.5x of baseline ${base}s"
}
gate_wall array64x64

echo "=== microbench: mc_yield wall regression gate ==="
# The rare-event yield workload runs the whole adaptive loop through the
# lockstep engine (docs/YIELD.md); its wall gate catches a regression in
# either the estimator's sample economy or the lane-reuse fast path.
gate_wall mc_yield

echo "=== cell zoo: every registered spec through signoff + bench ==="
# The zoo-labelled suite instantiates every cell-zoo entry, runs the full
# signoff battery at one corner, and round-trips the example decks through
# the netlist spec loader (docs/CELLZOO.md).
ctest --test-dir build --output-on-failure -L zoo -j "$JOBS"
# The bench figure must produce a per-cell x per-corner BENCH artifact
# with no failed or quarantined tasks; cache off so every metric in the
# artifact is freshly measured.
ZOO_OUT="build/ci_zoo_out"
rm -rf "$ZOO_OUT"
TFETSRAM_CACHE=off TFETSRAM_ZOO_CORNERS=smoke \
  TFETSRAM_OUT_DIR="$ZOO_OUT" \
  ./build/bench/run_all cell_zoo >/dev/null
grep -q '"failed":0' "$ZOO_OUT"/BENCH_cell_zoo.json
grep -q '"quarantined":0' "$ZOO_OUT"/BENCH_cell_zoo.json
grep -q 'bench:' "$ZOO_OUT"/cell_zoo_journal.jsonl
echo "cell-zoo signoff and bench artifacts verified"

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "=== asan job skipped ==="
else
  echo "=== build (Address+UndefinedBehaviorSanitizer) ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTFETSRAM_SANITIZE=address,undefined
  cmake --build build-asan -j "$JOBS" --target test_la test_sparse_diff test_hier_diff test_yield test_netlist

  echo "=== asan+ubsan: linear-kernel and differential suites ==="
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/test_la
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/test_sparse_diff
  # Mixed-vs-flat engine parity: the mixed engine's partition rebuild and
  # latched-load stamping are fresh pointer-heavy code; run its drift
  # detector under the memory sanitizers (docs/HIERARCHY.md).
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/test_hier_diff
  # The statistical yield harness sweeps the estimator's tail math
  # (mixture pdfs, weighted intervals) — cheap enough to ride the memory
  # sanitizers in full (docs/YIELD.md).
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/test_yield
  # The netlist front-end parses untrusted text (duplicate-name, dangling-
  # and undeclared-node diagnostics walk every token with line tracking);
  # string handling like that belongs under the memory sanitizers.
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/test_netlist
fi

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "=== tsan job skipped ==="
  exit 0
fi

echo "=== build (ThreadSanitizer) ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTFETSRAM_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target test_runner test_mc test_mc_batch test_faults test_deadline test_sparse_diff test_context test_hier test_la

echo "=== tsan: scheduler/cache/pool/fault/context tests ==="
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_runner
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_mc
# The lockstep engine's per-lane cells and index-ordered stats fold are
# exactly the shared-state-across-a-pool shape TSan exists for; the
# multi-lane differential test races it on purpose.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_mc_batch
# Concurrent tasks pinning conflicting solver backends through their own
# SimContexts, plus the MC inner-pool stats aggregation, under TSan.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_context
# The sparse/dense kernel-selection override is an atomic read in the
# Newton hot path; the diff suite exercises it across backends under TSan.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_sparse_diff
# The AMD ordering and static-pivot refactor tests run here too: the
# reused pivot sequence and ordering arenas are per-SparseLu state that
# concurrent contexts must never share.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_la
# The death test aborts by design; its fork/exec interacts badly with TSan,
# so it runs (and passes) in the regular job only.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_faults \
  --gtest_filter='-ThreadPoolDeathTest.*'
# Cancellation is cross-thread by design: the watchdog thread cancels
# tokens that solver threads poll, and request_cancel() races the
# scheduler's drain. The deadline suite must be TSan-clean.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_deadline
# Mixed-engine counter contracts: hier promotions/demotions bump the
# ambient per-thread SolverStats; the exact-count assertions must hold
# under TSan's scheduling too.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_hier

echo "=== ci.sh: all green ==="
