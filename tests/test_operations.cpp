// Operation-programming tests: waveform levels at key instants for hold,
// write, and read across topologies and assists, plus hold-state solving.

#include <gtest/gtest.h>

#include <cmath>

#include "sram/operations.hpp"
#include "spice/solution.hpp"

namespace tfetsram::sram {
namespace {

device::ModelSet models() {
    static const device::ModelSet set = device::make_model_set({}, false);
    return set;
}

SramCell make_cell(CellKind kind = CellKind::kTfet6T,
                   AccessDevice access = AccessDevice::kInwardP,
                   double beta = 0.6) {
    CellConfig cfg;
    cfg.kind = kind;
    cfg.access = access;
    cfg.beta = beta;
    cfg.models = models();
    return build_cell(cfg);
}

TEST(Operations, HoldLevels) {
    SramCell cell = make_cell();
    program_hold(cell);
    EXPECT_DOUBLE_EQ(cell.v_vdd->waveform().at(1e-9), 0.8);
    EXPECT_DOUBLE_EQ(cell.v_vss->waveform().at(1e-9), 0.0);
    EXPECT_DOUBLE_EQ(cell.v_wl->waveform().at(1e-9), 0.8); // inactive (p)
    EXPECT_DOUBLE_EQ(cell.v_bl->waveform().at(1e-9), 0.8); // clamped at VDD
}

TEST(Operations, WriteWaveformSchedule) {
    SramCell cell = make_cell();
    const OperationWindow w =
        program_write(cell, /*value=*/true, 200e-12, Assist::kNone);
    // Before the pulse: everything at hold levels.
    EXPECT_DOUBLE_EQ(cell.v_wl->waveform().at(0.0), 0.8);
    // During the pulse: wordline active (low for p-access), bitlines split.
    const double mid = w.wl_start + 50e-12;
    EXPECT_DOUBLE_EQ(cell.v_wl->waveform().at(mid), 0.0);
    EXPECT_DOUBLE_EQ(cell.v_bl->waveform().at(mid), 0.8);
    EXPECT_DOUBLE_EQ(cell.v_blb->waveform().at(mid), 0.0);
    // After everything: back to hold.
    EXPECT_DOUBLE_EQ(cell.v_wl->waveform().at(w.t_end), 0.8);
    EXPECT_DOUBLE_EQ(cell.v_blb->waveform().at(w.t_end), 0.8);
    // Window ordering.
    EXPECT_LT(w.wl_start, w.wl_end);
    EXPECT_LT(w.wl_end, w.t_end);
    EXPECT_NEAR(w.wl_end - w.wl_start, 200e-12 + 2 * 5e-12, 1e-15);
}

TEST(Operations, WriteZeroSwapsBitlines) {
    SramCell cell = make_cell();
    const OperationWindow w =
        program_write(cell, /*value=*/false, 200e-12, Assist::kNone);
    const double mid = w.wl_start + 50e-12;
    EXPECT_DOUBLE_EQ(cell.v_bl->waveform().at(mid), 0.0);
    EXPECT_DOUBLE_EQ(cell.v_blb->waveform().at(mid), 0.8);
}

TEST(Operations, WriteAssistAppliesBeforeWordline) {
    SramCell cell = make_cell(CellKind::kTfet6T, AccessDevice::kInwardP, 2.0);
    const OperationWindow w =
        program_write(cell, true, 200e-12, Assist::kWaVddLowering, 0.3);
    // Assist lead: VDD already lowered before the wordline asserts.
    EXPECT_NEAR(cell.v_vdd->waveform().at(w.wl_start - 1e-12), 0.56, 1e-9);
    EXPECT_DOUBLE_EQ(cell.v_vdd->waveform().at(0.0), 0.8);
    EXPECT_DOUBLE_EQ(cell.v_vdd->waveform().at(w.t_end), 0.8);
}

TEST(Operations, WordlineLoweringDrivesBelowGround) {
    SramCell cell = make_cell(CellKind::kTfet6T, AccessDevice::kInwardP, 2.0);
    const OperationWindow w = program_write(
        cell, true, 200e-12, Assist::kWaWordlineLowering, 0.3);
    const double mid = w.wl_start + 50e-12;
    EXPECT_NEAR(cell.v_wl->waveform().at(mid), -0.24, 1e-9);
}

TEST(Operations, WriteRejectsReadAssist) {
    SramCell cell = make_cell();
    EXPECT_THROW(
        program_write(cell, true, 200e-12, Assist::kRaGndLowering),
        contract_violation);
}

TEST(Operations, ReadRejectsWriteAssist) {
    SramCell cell = make_cell();
    EXPECT_THROW(program_read(cell, 200e-12, Assist::kWaGndRaising),
                 contract_violation);
}

TEST(Operations, ReadSetupSixT) {
    SramCell cell = make_cell();
    const ReadSetup s = program_read(cell, 300e-12, Assist::kNone);
    EXPECT_FALSE(s.q_high_init); // disturb the node storing 0
    EXPECT_EQ(s.disturb_node, cell.q);
    EXPECT_EQ(s.safe_node, cell.qb);
    EXPECT_EQ(s.sense_node, cell.bl);
    EXPECT_DOUBLE_EQ(s.precharge_level, 0.8);
    // Both bitlines precharged.
    const double mid = s.window.wl_start + 50e-12;
    EXPECT_DOUBLE_EQ(cell.v_bl->waveform().at(mid), 0.8);
    EXPECT_DOUBLE_EQ(cell.v_blb->waveform().at(mid), 0.8);
}

TEST(Operations, ReadGndLoweringDropsVss) {
    SramCell cell = make_cell();
    const ReadSetup s =
        program_read(cell, 300e-12, Assist::kRaGndLowering, 0.3);
    const double mid = s.window.wl_start + 50e-12;
    EXPECT_NEAR(cell.v_vss->waveform().at(mid), -0.24, 1e-9);
    EXPECT_DOUBLE_EQ(cell.v_vss->waveform().at(0.0), 0.0);
}

TEST(Operations, ReadBitlineLoweringDropsPrecharge) {
    SramCell cell = make_cell();
    const ReadSetup s =
        program_read(cell, 300e-12, Assist::kRaBitlineLowering, 0.3);
    EXPECT_NEAR(s.precharge_level, 0.56, 1e-9);
}

TEST(Operations, ReadFloatOpensSwitches) {
    SramCell cell = make_cell();
    const ReadSetup s = program_read(cell, 300e-12, Assist::kNone,
                                     kDefaultAssistFraction, {}, true);
    // Switch control low (open) once the wordline is active.
    EXPECT_DOUBLE_EQ(cell.sw_bl->resistance_at(s.window.wl_start), 1e12);
    EXPECT_DOUBLE_EQ(cell.sw_bl->resistance_at(0.0), 1e3);
}

TEST(Operations, SevenTReadUsesReadPort) {
    SramCell cell = make_cell(CellKind::kTfet7T);
    const ReadSetup s = program_read(cell, 300e-12, Assist::kNone);
    EXPECT_EQ(s.sense_node, cell.rbl);
    const double mid = s.window.wl_start + 50e-12;
    EXPECT_DOUBLE_EQ(cell.v_rwl->waveform().at(mid), 0.0); // asserted low
    EXPECT_DOUBLE_EQ(cell.v_wl->waveform().at(mid), 0.0);  // write WL off
}

TEST(Operations, AsymmetricWritesZeroOnly) {
    EXPECT_FALSE(preferred_write_value(CellKind::kTfetAsym6T));
    EXPECT_TRUE(preferred_write_value(CellKind::kTfet6T));
    SramCell cell = make_cell(CellKind::kTfetAsym6T);
    EXPECT_THROW(program_write(cell, true, 200e-12), contract_violation);
    EXPECT_NO_THROW(program_write(cell, false, 200e-12));
}

TEST(Operations, AsymmetricReadDisturbsQb) {
    SramCell cell = make_cell(CellKind::kTfetAsym6T);
    const ReadSetup s = program_read(cell, 300e-12, Assist::kNone);
    EXPECT_TRUE(s.q_high_init);
    EXPECT_EQ(s.disturb_node, cell.qb);
    EXPECT_EQ(s.sense_node, cell.blb);
}

TEST(Operations, HoldStateSelectsBothPolarities) {
    SramCell cell = make_cell();
    program_hold(cell);
    const spice::SolverOptions opts;
    const HoldState high = solve_hold_state(cell, true, opts);
    ASSERT_TRUE(high.converged);
    EXPECT_TRUE(high.state_ok);
    EXPECT_GT(spice::branch_voltage(high.x, cell.q, cell.qb), 0.6);

    const HoldState low = solve_hold_state(cell, false, opts);
    ASSERT_TRUE(low.converged);
    EXPECT_TRUE(low.state_ok);
    EXPECT_LT(spice::branch_voltage(low.x, cell.q, cell.qb), -0.6);
}

TEST(Operations, HoldStateAllKinds) {
    for (CellKind kind : {CellKind::kCmos6T, CellKind::kTfet6T,
                          CellKind::kTfet7T, CellKind::kTfetAsym6T}) {
        SramCell cell = make_cell(
            kind, kind == CellKind::kCmos6T ? AccessDevice::kCmos
                                            : AccessDevice::kInwardP,
            1.0);
        program_hold(cell);
        const HoldState hs = solve_hold_state(cell, true, {});
        EXPECT_TRUE(hs.converged) << to_string(kind);
        EXPECT_TRUE(hs.state_ok) << to_string(kind);
    }
}

} // namespace
} // namespace tfetsram::sram
