// Cell-construction tests: netlist topology for every cell kind and access
// device, orientation wiring (the crux of the inward/outward distinction),
// wordline polarity, and sizing.

#include <gtest/gtest.h>

#include "sram/cell.hpp"

namespace tfetsram::sram {
namespace {

device::ModelSet models() {
    // Analytic models: table extraction is unnecessary for structure tests.
    static const device::ModelSet set = device::make_model_set({}, false);
    return set;
}

CellConfig config(CellKind kind, AccessDevice access, double beta = 1.0) {
    CellConfig cfg;
    cfg.kind = kind;
    cfg.access = access;
    cfg.beta = beta;
    cfg.models = models();
    return cfg;
}

const spice::Transistor* find(const SramCell& cell, const std::string& label) {
    for (const spice::Transistor* t : cell.circuit.transistors())
        if (t->label() == label)
            return t;
    return nullptr;
}

TEST(Cell, SixTransistorCount) {
    for (CellKind kind : {CellKind::kCmos6T, CellKind::kTfet6T,
                          CellKind::kTfetAsym6T}) {
        const SramCell cell = build_cell(config(kind, AccessDevice::kInwardP));
        EXPECT_EQ(cell.circuit.transistors().size(), 6u) << to_string(kind);
    }
}

TEST(Cell, SevenTransistorCount) {
    const SramCell cell =
        build_cell(config(CellKind::kTfet7T, AccessDevice::kInwardP));
    EXPECT_EQ(cell.circuit.transistors().size(), 7u);
    EXPECT_NE(cell.v_rwl, nullptr);
    EXPECT_NE(cell.v_rbl, nullptr);
    EXPECT_NE(cell.sw_rbl, nullptr);
}

TEST(Cell, HandlesPopulated) {
    const SramCell cell =
        build_cell(config(CellKind::kTfet6T, AccessDevice::kInwardP));
    EXPECT_NE(cell.v_vdd, nullptr);
    EXPECT_NE(cell.v_vss, nullptr);
    EXPECT_NE(cell.v_bl, nullptr);
    EXPECT_NE(cell.v_blb, nullptr);
    EXPECT_NE(cell.v_wl, nullptr);
    EXPECT_NE(cell.sw_bl, nullptr);
    EXPECT_NE(cell.sw_blb, nullptr);
    EXPECT_NE(cell.q, cell.qb);
}

TEST(Cell, InwardPtfetOrientation) {
    // Inward p-type: source at the bitline, drain at the storage node —
    // conducts bitline -> cell only.
    const SramCell cell =
        build_cell(config(CellKind::kTfet6T, AccessDevice::kInwardP));
    const spice::Transistor* axl = find(cell, "AXL");
    ASSERT_NE(axl, nullptr);
    EXPECT_EQ(axl->source(), cell.bl);
    EXPECT_EQ(axl->drain(), cell.q);
    EXPECT_EQ(std::string(axl->model().name()), "pTFET");
}

TEST(Cell, InwardNtfetOrientation) {
    // Inward n-type: drain at the bitline (nTFET conducts drain -> source).
    const SramCell cell =
        build_cell(config(CellKind::kTfet6T, AccessDevice::kInwardN));
    const spice::Transistor* axl = find(cell, "AXL");
    ASSERT_NE(axl, nullptr);
    EXPECT_EQ(axl->drain(), cell.bl);
    EXPECT_EQ(axl->source(), cell.q);
    EXPECT_EQ(std::string(axl->model().name()), "nTFET");
}

TEST(Cell, OutwardOrientationsMirrorInward) {
    const SramCell n =
        build_cell(config(CellKind::kTfet6T, AccessDevice::kOutwardN));
    const spice::Transistor* axn = find(n, "AXR");
    ASSERT_NE(axn, nullptr);
    EXPECT_EQ(axn->drain(), n.qb);
    EXPECT_EQ(axn->source(), n.blb);

    const SramCell p =
        build_cell(config(CellKind::kTfet6T, AccessDevice::kOutwardP));
    const spice::Transistor* axp = find(p, "AXR");
    ASSERT_NE(axp, nullptr);
    EXPECT_EQ(axp->source(), p.qb);
    EXPECT_EQ(axp->drain(), p.blb);
}

TEST(Cell, WordlinePolarity) {
    const SramCell p =
        build_cell(config(CellKind::kTfet6T, AccessDevice::kInwardP));
    EXPECT_DOUBLE_EQ(p.wl_active_level(), 0.0);
    EXPECT_DOUBLE_EQ(p.wl_inactive_level(), p.config.vdd);

    const SramCell n =
        build_cell(config(CellKind::kTfet6T, AccessDevice::kInwardN));
    EXPECT_DOUBLE_EQ(n.wl_active_level(), n.config.vdd);
    EXPECT_DOUBLE_EQ(n.wl_inactive_level(), 0.0);

    const SramCell c =
        build_cell(config(CellKind::kCmos6T, AccessDevice::kCmos));
    EXPECT_DOUBLE_EQ(c.wl_active_level(), c.config.vdd);
}

TEST(Cell, BetaSizesPullDowns) {
    const SramCell cell =
        build_cell(config(CellKind::kTfet6T, AccessDevice::kInwardP, 2.5));
    const spice::Transistor* pdl = find(cell, "PDL");
    const spice::Transistor* axl = find(cell, "AXL");
    ASSERT_NE(pdl, nullptr);
    ASSERT_NE(axl, nullptr);
    EXPECT_DOUBLE_EQ(pdl->width_um() / axl->width_um(), 2.5);
}

TEST(Cell, CmosCoreUsesMosfets) {
    const SramCell cell =
        build_cell(config(CellKind::kCmos6T, AccessDevice::kCmos));
    const spice::Transistor* pdl = find(cell, "PDL");
    const spice::Transistor* pul = find(cell, "PUL");
    ASSERT_NE(pdl, nullptr);
    ASSERT_NE(pul, nullptr);
    EXPECT_EQ(std::string(pdl->model().name()), "nMOS");
    EXPECT_EQ(std::string(pul->model().name()), "pMOS");
    EXPECT_TRUE(cell.variable_devices.empty())
        << "CMOS devices are not subject to the paper's TFET variation";
}

TEST(Cell, TfetCellVariableDevices) {
    const SramCell cell =
        build_cell(config(CellKind::kTfet6T, AccessDevice::kInwardP));
    EXPECT_EQ(cell.variable_devices.size(), 6u);
    const SramCell cell7 =
        build_cell(config(CellKind::kTfet7T, AccessDevice::kInwardP));
    EXPECT_EQ(cell7.variable_devices.size(), 7u);
}

TEST(Cell, SevenTWriteBitlinesIdleLow) {
    // [14] clamps the write bitlines to 0 during hold to avoid reverse
    // biasing the outward access devices.
    const SramCell cell =
        build_cell(config(CellKind::kTfet7T, AccessDevice::kInwardP));
    EXPECT_DOUBLE_EQ(cell.v_bl->waveform().initial(), 0.0);
    EXPECT_DOUBLE_EQ(cell.v_blb->waveform().initial(), 0.0);
}

TEST(Cell, SevenTReadBufferWiring) {
    const SramCell cell =
        build_cell(config(CellKind::kTfet7T, AccessDevice::kInwardP));
    const spice::Transistor* m7 = find(cell, "M7");
    ASSERT_NE(m7, nullptr);
    EXPECT_EQ(m7->gate(), cell.qb);
    EXPECT_EQ(m7->drain(), cell.rbl);
    EXPECT_EQ(m7->source(), cell.rwl);
}

TEST(Cell, AsymmetricAccessMix) {
    const SramCell cell =
        build_cell(config(CellKind::kTfetAsym6T, AccessDevice::kInwardP));
    const spice::Transistor* axl = find(cell, "AXL");
    const spice::Transistor* axr = find(cell, "AXR");
    ASSERT_NE(axl, nullptr);
    ASSERT_NE(axr, nullptr);
    // Left: outward (drain at q); right: inward (drain at bitline).
    EXPECT_EQ(axl->drain(), cell.q);
    EXPECT_EQ(axr->drain(), cell.blb);
}

TEST(Cell, RejectsInvalidConfig) {
    CellConfig bad = config(CellKind::kTfet6T, AccessDevice::kInwardP);
    bad.beta = 0.0;
    EXPECT_THROW(build_cell(bad), contract_violation);
    CellConfig no_models = config(CellKind::kTfet6T, AccessDevice::kInwardP);
    no_models.models = {};
    EXPECT_THROW(build_cell(no_models), contract_violation);
}

TEST(Cell, EnumNames) {
    EXPECT_STREQ(to_string(AccessDevice::kInwardP), "inward pTFET");
    EXPECT_STREQ(to_string(CellKind::kTfet7T), "7T TFET SRAM");
    EXPECT_TRUE(access_is_ptype(AccessDevice::kOutwardP));
    EXPECT_FALSE(access_is_ptype(AccessDevice::kCmos));
}

} // namespace
} // namespace tfetsram::sram
