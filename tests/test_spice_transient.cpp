// Transient engine tests against closed-form RC answers, plus breakpoint
// handling, early-stop conditions, and result interrogation helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"

namespace tfetsram::spice {
namespace {

/// 1 kOhm / 1 pF low-pass driven by a step at t = 1 ns (tau = 1 ns).
struct RcFixture {
    Circuit c;
    NodeId in = 0;
    NodeId out = 0;

    RcFixture() {
        in = c.add_node("in");
        out = c.add_node("out");
        c.add_vsource("V", in, kGround,
                      Waveform::pwl({{1e-9, 0.0}, {1.001e-9, 1.0}}));
        c.add_resistor("R", in, out, 1e3);
        c.add_capacitor("C", out, kGround, 1e-12);
    }
};

TEST(Transient, RcStepMatchesAnalytic) {
    RcFixture f;
    SolverOptions opts;
    opts.dt_max = 2e-11;
    const TransientResult tr = solve_transient(f.c, opts, 6e-9);
    ASSERT_TRUE(tr.completed) << tr.message;

    const double tau = 1e-9;
    for (double t : {2e-9, 3e-9, 4.5e-9}) {
        const double expected = 1.0 - std::exp(-(t - 1.001e-9) / tau);
        EXPECT_NEAR(tr.voltage_at(f.out, t), expected, 0.01)
            << "at t=" << t;
    }
}

TEST(Transient, RcStartsAtDcOperatingPoint) {
    RcFixture f;
    const TransientResult tr = solve_transient(f.c, {}, 0.5e-9);
    ASSERT_TRUE(tr.completed);
    EXPECT_NEAR(tr.voltage(f.out, 0), 0.0, 1e-6);
    // Nothing happens before the step.
    EXPECT_NEAR(tr.voltage_at(f.out, 0.4e-9), 0.0, 1e-6);
}

TEST(Transient, LandsOnBreakpoints) {
    RcFixture f;
    const TransientResult tr = solve_transient(f.c, {}, 2e-9);
    ASSERT_TRUE(tr.completed);
    bool hit = false;
    for (double t : tr.times())
        if (std::fabs(t - 1e-9) < 1e-20)
            hit = true;
    EXPECT_TRUE(hit) << "engine must land exactly on source breakpoints";
}

TEST(Transient, StopConditionEndsEarly) {
    RcFixture f;
    const NodeId out = f.out;
    const auto stop = [out](double, const la::Vector& x) {
        return node_voltage(x, out) > 0.5;
    };
    const TransientResult tr = solve_transient(f.c, {}, 10e-9, stop);
    ASSERT_TRUE(tr.completed);
    EXPECT_TRUE(tr.stopped_early);
    EXPECT_LT(tr.end_time(), 2.5e-9);
    EXPECT_GT(tr.final_voltage(out), 0.5);
}

TEST(Transient, CapacitorDividerStepSharing) {
    // Series caps divide a fast step by the capacitance ratio.
    Circuit c;
    const NodeId in = c.add_node("in");
    const NodeId mid = c.add_node("mid");
    c.add_vsource("V", in, kGround,
                  Waveform::pwl({{1e-10, 0.0}, {2e-10, 1.0}}));
    c.add_capacitor("C1", in, mid, 3e-15);
    c.add_capacitor("C2", mid, kGround, 1e-15);
    const TransientResult tr = solve_transient(c, {}, 4e-10);
    ASSERT_TRUE(tr.completed) << tr.message;
    EXPECT_NEAR(tr.final_voltage(mid), 0.75, 0.02);
}

TEST(Transient, TimedSwitchIsolatesNode) {
    // Precharge a cap through a switch, open the switch, then move the
    // source: the cap must hold its charge.
    Circuit c;
    const NodeId drv = c.add_node("drv");
    const NodeId bl = c.add_node("bl");
    c.add_vsource("V", drv, kGround,
                  Waveform::pwl({{2e-9, 1.0}, {2.1e-9, 0.0}}));
    c.add_switch("S", drv, bl, 1e3, 1e15,
                 Waveform::pwl({{1e-9, 1.0}, {1.05e-9, 0.0}}));
    c.add_capacitor("C", bl, kGround, 1e-14);
    const TransientResult tr = solve_transient(c, {}, 5e-9);
    ASSERT_TRUE(tr.completed) << tr.message;
    EXPECT_NEAR(tr.final_voltage(drv), 0.0, 1e-3);
    EXPECT_NEAR(tr.final_voltage(bl), 1.0, 0.02); // held by the open switch
}

TEST(TransientResult, MinDifferenceAndCrossing) {
    TransientResult tr;
    // Two-node synthetic trace: v(a) falls 1 -> 0, v(b) rises 0 -> 1.
    for (int i = 0; i <= 10; ++i) {
        const double t = i * 1e-10;
        la::Vector x = {1.0 - 0.1 * i, 0.1 * i};
        tr.append(t, x);
    }
    // a - b hits its minimum at the end: 0 - 1 = -1.
    EXPECT_NEAR(tr.min_difference(1, 2, 0.0, 1e-9), -1.0, 1e-12);
    // a - b crosses zero at t = 0.5 ns.
    EXPECT_NEAR(tr.first_crossing_below(1, 2, 0.0, 0.0), 0.5e-9, 1e-12);
}

TEST(TransientResult, VoltageAtInterpolates) {
    TransientResult tr;
    tr.append(0.0, {0.0});
    tr.append(1e-9, {1.0});
    EXPECT_NEAR(tr.voltage_at(1, 0.5e-9), 0.5, 1e-12);
    EXPECT_NEAR(tr.voltage_at(1, -1.0), 0.0, 1e-12); // clamps
    EXPECT_NEAR(tr.voltage_at(1, 2e-9), 1.0, 1e-12); // clamps
}

} // namespace
} // namespace tfetsram::spice
