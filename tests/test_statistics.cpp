// Tests for the Monte-Carlo statistics extensions: regression,
// log-log sensitivity, yield intervals — plus the physical payoff: the
// measured tox sensitivity of WLcrit.

#include <gtest/gtest.h>

#include <cmath>

#include "mc/monte_carlo.hpp"
#include "mc/statistics.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "util/rng.hpp"

namespace tfetsram::mc {
namespace {

TEST(Regression, ExactLine) {
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {3, 5, 7, 9, 11}; // y = 2x + 1
    const Regression r = linear_regression(x, y);
    EXPECT_EQ(r.count, 5u);
    EXPECT_NEAR(r.slope, 2.0, 1e-12);
    EXPECT_NEAR(r.intercept, 1.0, 1e-12);
    EXPECT_NEAR(r.correlation, 1.0, 1e-12);
}

TEST(Regression, IgnoresNonFinite) {
    const std::vector<double> x = {1, 2, std::nan(""), 4};
    const std::vector<double> y = {2, 4, 6, 8};
    const Regression r = linear_regression(x, y);
    EXPECT_EQ(r.count, 3u);
    EXPECT_NEAR(r.slope, 2.0, 1e-12);
}

TEST(Regression, NoisyDataCorrelationBelowOne) {
    Rng rng(5);
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        const double xi = rng.uniform(0, 1);
        x.push_back(xi);
        y.push_back(3.0 * xi + rng.normal(0.0, 0.3));
    }
    const Regression r = linear_regression(x, y);
    EXPECT_NEAR(r.slope, 3.0, 0.3);
    EXPECT_GT(r.correlation, 0.8);
    EXPECT_LT(r.correlation, 1.0);
}

TEST(Sensitivity, PowerLawRecovered) {
    // y = c x^4 -> log-log slope 4.
    std::vector<double> x;
    std::vector<double> y;
    for (double xi = 0.5; xi <= 2.0; xi += 0.1) {
        x.push_back(xi);
        y.push_back(7.0 * std::pow(xi, 4.0));
    }
    EXPECT_NEAR(log_log_sensitivity(x, y), 4.0, 1e-9);
}

TEST(Yield, IntervalBracketsPoint) {
    const YieldInterval yi = yield_interval(45, 50);
    EXPECT_NEAR(yi.point, 0.9, 1e-12);
    EXPECT_LT(yi.lower, 0.9);
    EXPECT_GT(yi.upper, 0.9);
    EXPECT_GT(yi.lower, 0.75);
    EXPECT_LT(yi.upper, 0.99);
}

TEST(Yield, PerfectSampleStillUncertain) {
    // 20/20 passing does NOT prove 100 % yield.
    const YieldInterval yi = yield_interval(20, 20);
    EXPECT_DOUBLE_EQ(yi.point, 1.0);
    EXPECT_LT(yi.lower, 0.9);
    EXPECT_DOUBLE_EQ(yi.upper, 1.0);
}

TEST(Yield, TightensWithSamples) {
    const YieldInterval small = yield_interval(9, 10);
    const YieldInterval large = yield_interval(900, 1000);
    EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(Yield, ZeroTrialsAreVacuousNotFatal) {
    // An all-censored batch must flow into the BENCH artifact as a
    // vacuous interval, not abort the run on a contract violation.
    const YieldInterval yi = yield_interval(0, 0);
    EXPECT_TRUE(std::isnan(yi.point));
    EXPECT_EQ(yi.lower, 0.0);
    EXPECT_EQ(yi.upper, 1.0);
}

TEST(Yield, AllCensoredIntervalIsVacuous) {
    // Zero evaluated, five censored: nothing observed, so the point is
    // NaN and the worst-case imputations span everything.
    const YieldInterval yi = censored_yield_interval(0, 0, 5);
    EXPECT_TRUE(std::isnan(yi.point));
    EXPECT_LT(yi.lower, 0.05);
    EXPECT_GT(yi.upper, 0.95);
}

TEST(Yield, CensoredReducesToPlainWhenNothingCensored) {
    const YieldInterval plain = yield_interval(45, 50);
    const YieldInterval censored = censored_yield_interval(45, 50, 0);
    EXPECT_EQ(plain.point, censored.point);
    EXPECT_EQ(plain.lower, censored.lower);
    EXPECT_EQ(plain.upper, censored.upper);
}

TEST(NormalQuantile, AgreesWithCdf) {
    for (const double p : {1e-9, 1e-5, 0.01, 0.3, 0.5, 0.9, 0.999}) {
        const double z = normal_quantile(p);
        EXPECT_NEAR(normal_cdf(z), p, 1e-12 + 1e-10 * p) << p;
    }
}

TEST(Sensitivity, WlcritVsToxIsSteeplyNegative) {
    // The physical payoff: thinner oxide -> higher field -> faster write.
    // With the field ~ (tox_nom/tox)^2 inside an exponential, the log-log
    // sensitivity of WLcrit to tox is large and positive (thicker = much
    // slower).
    sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    VariationSpec vspec;
    vspec.table_spec.points = 121;
    const TfetVariationSampler sampler(vspec);
    const sram::MetricOptions opts;
    const McResult res = run_monte_carlo(
        cfg, sampler, 12, 31,
        [&](sram::SramCell& cell) {
            return sram::critical_wordline_pulse(cell, sram::Assist::kNone,
                                                 opts);
        });
    const double s = log_log_sensitivity(res.tox_values, res.samples);
    EXPECT_GT(s, 2.0) << "WLcrit must rise steeply with tox";
    const Regression r = linear_regression(res.tox_values, res.samples);
    EXPECT_GT(r.correlation, 0.9) << "tox should dominate the variation";
}

} // namespace
} // namespace tfetsram::mc
