// Deadline-aware cancellation and graceful degradation: the CancelToken
// primitive, deterministic retry backoff, the TFETSRAM_TASK_TIMEOUT env
// wiring, cooperative expiry inside DC / transient / Monte-Carlo solves
// (partial results preserved, counters deterministic), the stall fault
// site, the runner watchdog (stall detection -> cancel -> quarantine),
// token reset across runner retries, and the drain-and-cancel shutdown
// path. Companion to test_faults.cpp; semantics in docs/ROBUSTNESS.md.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mc/batch.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/statistics.hpp"
#include "runner/runner.hpp"
#include "spice/cancel.hpp"
#include "spice/dc.hpp"
#include "spice/transient.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"

namespace tfetsram {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch dir per test case.
fs::path scratch(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("deadline_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

runner::RunnerConfig runner_config(const std::string& name) {
    const fs::path dir = scratch(name);
    runner::RunnerConfig cfg;
    cfg.run_name = name;
    cfg.threads = 1;
    cfg.cache_mode = runner::CacheMode::kOff;
    cfg.cache_dir = dir / "cache";
    cfg.out_dir = dir / "out";
    cfg.print_summary = false;
    return cfg;
}

runner::TaskSpec task(std::string id, runner::TaskFn fn) {
    runner::TaskSpec spec;
    spec.id = std::move(id);
    spec.fn = std::move(fn);
    return spec;
}

/// Linear resistive divider: converges under plain Newton unless faulted.
spice::Circuit divider() {
    spice::Circuit c;
    const spice::NodeId in = c.add_node("in");
    const spice::NodeId mid = c.add_node("mid");
    c.add_vsource("V1", in, spice::kGround, spice::Waveform::dc(1.0));
    c.add_resistor("R1", in, mid, 1e3);
    c.add_resistor("R2", mid, spice::kGround, 1e3);
    return c;
}

/// RC step response: enough accepted transient steps to interrupt midway.
spice::Circuit rc_lowpass() {
    spice::Circuit c;
    const spice::NodeId in = c.add_node("in");
    const spice::NodeId out = c.add_node("out");
    c.add_vsource("V1", in, spice::kGround, spice::Waveform::dc(1.0));
    c.add_resistor("R1", in, out, 1e3);
    c.add_capacitor("C1", out, spice::kGround, 1e-12);
    return c;
}

// --------------------------------------------------------- token primitive

TEST(CancelToken, CancelIsStickyUntilReset) {
    spice::CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    token.cancel(); // idempotent
    EXPECT_TRUE(token.cancelled());
    token.reset();
    EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, HeartbeatCountsTicks) {
    spice::CancelToken token;
    EXPECT_EQ(token.progress(), 0u);
    token.tick();
    token.tick();
    EXPECT_EQ(token.progress(), 2u);
    token.reset(); // reset clears the flag, not the heartbeat history
    token.tick();
    EXPECT_EQ(token.progress(), 3u);
}

TEST(SolveErrorCode, CancellationPredicateAndNames) {
    EXPECT_TRUE(spice::is_cancellation(spice::SolveErrorCode::kCancelled));
    EXPECT_TRUE(
        spice::is_cancellation(spice::SolveErrorCode::kDeadlineExceeded));
    EXPECT_FALSE(
        spice::is_cancellation(spice::SolveErrorCode::kNonConvergence));
    EXPECT_EQ(spice::to_string(spice::SolveErrorCode::kCancelled),
              "cancelled");
    EXPECT_EQ(spice::to_string(spice::SolveErrorCode::kDeadlineExceeded),
              "deadline-exceeded");
}

// ------------------------------------------------------- backoff schedule

TEST(RetryBackoff, FirstAttemptAndDisabledBaseAreFree) {
    EXPECT_DOUBLE_EQ(runner::retry_backoff_s(1, 42, 0.5, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(runner::retry_backoff_s(0, 42, 0.5, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(runner::retry_backoff_s(3, 42, 0.0, 10.0), 0.0);
}

TEST(RetryBackoff, DeterministicJitterWithinExponentialEnvelope) {
    for (int attempt = 2; attempt <= 6; ++attempt) {
        const double a = runner::retry_backoff_s(attempt, 7, 0.1, 100.0);
        const double b = runner::retry_backoff_s(attempt, 7, 0.1, 100.0);
        EXPECT_DOUBLE_EQ(a, b) << "attempt " << attempt;
        const double envelope = 0.1 * std::ldexp(1.0, attempt - 2);
        EXPECT_GE(a, 0.5 * envelope) << "attempt " << attempt;
        EXPECT_LT(a, envelope) << "attempt " << attempt;
    }
    // Different seeds desynchronize the schedule.
    EXPECT_NE(runner::retry_backoff_s(4, 7, 0.1, 100.0),
              runner::retry_backoff_s(4, 8, 0.1, 100.0));
}

TEST(RetryBackoff, CapBoundsTheDelay) {
    const double capped = runner::retry_backoff_s(20, 7, 1.0, 0.25);
    EXPECT_LE(capped, 0.25);
    EXPECT_GT(capped, 0.0);
}

// ----------------------------------------------------------- env plumbing

TEST(DeadlineEnv, ParseDoubleAcceptsNumbersRejectsJunk) {
    EXPECT_EQ(env::parse_double("2.5").value_or(-1.0), 2.5);
    EXPECT_EQ(env::parse_double("1e-3").value_or(-1.0), 1e-3);
    EXPECT_FALSE(env::parse_double("").has_value());
    EXPECT_FALSE(env::parse_double("fast").has_value());
    EXPECT_FALSE(env::parse_double("1.5s").has_value());
    EXPECT_FALSE(env::parse_double("inf").has_value());
}

TEST(DeadlineEnv, TaskTimeoutArmsSimConfigDeadline) {
    ::setenv("TFETSRAM_TASK_TIMEOUT", "2.5", 1);
    const env::EnvSnapshot snap = env::EnvSnapshot::capture();
    EXPECT_DOUBLE_EQ(snap.task_timeout, 2.5);
    const spice::SimConfig cfg = spice::SimConfig::from_env(snap);
    EXPECT_DOUBLE_EQ(cfg.deadline_s, 2.5);
    ::unsetenv("TFETSRAM_TASK_TIMEOUT");
    const spice::SimConfig fresh = spice::SimConfig::from_env();
    EXPECT_DOUBLE_EQ(fresh.deadline_s, 0.0);
}

// ------------------------------------------------- cooperative DC expiry

TEST(DcCancellation, PreCancelledTokenStopsBeforeAnyStrategy) {
    spice::SimConfig cfg;
    cfg.cancel = std::make_shared<spice::CancelToken>();
    cfg.cancel->cancel();
    spice::SimContext ctx(cfg);
    spice::Circuit c = divider();
    const spice::DcResult r = spice::solve_dc(c, ctx);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.strategy, "cancelled");
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->code, spice::SolveErrorCode::kCancelled);
    EXPECT_EQ(ctx.stats().cancelled_solves, 1u);
    // No Newton work was spent on a doomed solve.
    EXPECT_EQ(ctx.stats().nr_iterations, 0u);
}

TEST(DcCancellation, IterationBudgetExpiresDeterministically) {
    auto run_pair = [] {
        spice::SimConfig cfg;
        cfg.iteration_budget = 1;
        spice::SimContext ctx(cfg);
        spice::Circuit c = divider();
        const spice::DcResult first = spice::solve_dc(c, ctx);
        EXPECT_TRUE(first.converged); // budget not yet consumed
        const spice::DcResult second = spice::solve_dc(c, ctx);
        EXPECT_FALSE(second.converged);
        EXPECT_TRUE(second.error.has_value());
        if (second.error) {
            EXPECT_EQ(second.error->code,
                      spice::SolveErrorCode::kDeadlineExceeded);
        }
        return std::make_pair(ctx.stats().deadline_polls,
                              ctx.stats().cancelled_solves);
    };
    const auto a = run_pair();
    const auto b = run_pair();
    // Same work, same polls, same censored-solve count — rerun-stable.
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_EQ(a.second, 1u);
    EXPECT_GT(a.first, 0u);
}

// --------------------------------------------- mid-transient degradation

TEST(TransientCancellation, DeadlinePreservesPartialWaveform) {
    // Measure an uninterrupted run, then rerun with a budget that expires
    // near (but before) the end: the result must carry the waveform up to
    // the expiry point plus a structured deadline error.
    spice::SimConfig full_cfg;
    spice::SimContext full_ctx(full_cfg);
    spice::Circuit c0 = rc_lowpass();
    const double t_end = 10e-9; // 10 RC time constants
    const spice::TransientResult full =
        spice::solve_transient(c0, full_ctx, t_end);
    ASSERT_TRUE(full.completed);
    ASSERT_GT(full.size(), 4u);
    const std::uint64_t full_iters = full_ctx.stats().nr_iterations;
    ASSERT_GT(full_iters, 4u);

    auto run_budgeted = [&](std::uint64_t budget) {
        spice::SimConfig cfg;
        cfg.iteration_budget = budget;
        spice::SimContext ctx(cfg);
        spice::Circuit c = rc_lowpass();
        const spice::TransientResult r =
            spice::solve_transient(c, ctx, t_end);
        EXPECT_FALSE(r.completed);
        EXPECT_TRUE(r.error.has_value());
        if (r.error) {
            EXPECT_EQ(r.error->code,
                      spice::SolveErrorCode::kDeadlineExceeded);
        }
        EXPECT_NE(r.message.find("partial waveform preserved"),
                  std::string::npos);
        // Partial trajectory: started, made progress, stopped early.
        EXPECT_TRUE(r.has_state());
        EXPECT_GT(r.size(), 1u);
        EXPECT_GT(r.time_reached, 0.0);
        EXPECT_LT(r.time_reached, t_end);
        EXPECT_GE(ctx.stats().cancelled_solves, 1u);
        return std::make_pair(r.time_reached, ctx.stats().deadline_polls);
    };
    const auto a = run_budgeted(full_iters - 1);
    const auto b = run_budgeted(full_iters - 1);
    EXPECT_DOUBLE_EQ(a.first, b.first); // expiry lands on the same step
    EXPECT_EQ(a.second, b.second);      // and the poll count is identical
}

// ------------------------------------------------ Monte-Carlo censoring

TEST(McCancellation, DeadlineCensoredSamplesFlowIntoYieldInterval) {
    const sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    mc::VariationSpec vspec;
    vspec.table_spec.points = 121; // coarse tables keep the test quick
    const mc::TfetVariationSampler sampler(vspec);

    spice::SimConfig sim;
    sim.cancel = std::make_shared<spice::CancelToken>();
    sim.cancel->cancel(); // expire before the first sample is evaluated
    spice::SimContext ctx(sim);
    std::atomic<int> metric_calls{0};
    const mc::McResult res = mc::run_monte_carlo(
        ctx, cfg, sampler, 4, 7,
        [&](sram::SramCell& cell) -> double {
            ++metric_calls;
            return cell.config.vdd;
        },
        /*threads=*/1);
    // Cancellation censors every sample cooperatively — the metric never
    // runs, the slots are NaN-marked, and nothing lands in the moments.
    EXPECT_EQ(metric_calls.load(), 0);
    EXPECT_EQ(res.n_censored, 4u);
    ASSERT_EQ(res.samples.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_TRUE(std::isnan(res.samples[i])) << "i=" << i;
        EXPECT_EQ(res.censored[i], 1) << "i=" << i;
    }
    EXPECT_EQ(res.summary.count, 0u);

    // Deadline-censored samples widen the yield interval exactly like
    // convergence-censored ones: worst-case imputation over the full
    // trial count.
    const mc::YieldInterval plain = mc::yield_interval(4, 4);
    const mc::YieldInterval cens =
        mc::censored_yield_interval(4, 4, res.n_censored);
    EXPECT_LT(cens.lower, plain.lower);
    EXPECT_GE(cens.upper, plain.upper);
    EXPECT_DOUBLE_EQ(cens.lower, mc::yield_interval(4, 8).lower);
    EXPECT_DOUBLE_EQ(cens.upper, mc::yield_interval(8, 8).upper);
}

TEST(McCancellation, MidBatchExpiryCensorsOnlyRemainingSamples) {
    // The token fires from *inside* the lockstep batch — after sample 2's
    // metric has already produced its value. The completed samples must
    // survive; only the not-yet-evaluated tail is censored, and both
    // engines agree on the split and the surviving values bitwise.
    const sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    mc::VariationSpec vspec;
    vspec.table_spec.points = 121;
    const mc::TfetVariationSampler sampler(vspec);
    constexpr std::size_t kN = 6;
    constexpr std::uint64_t kSeed = 23;

    struct Scenario {
        mc::McResult result;
        int metric_calls = 0;
    };
    const auto run = [&](bool batched) {
        spice::SimConfig sim;
        sim.cancel = std::make_shared<spice::CancelToken>();
        spice::SimContext ctx(sim);
        Scenario s;
        const mc::CellMetric metric = [&](sram::SramCell& cell) {
            // Solve first, cancel after: the value is complete before the
            // token fires, so this sample must NOT be censored.
            const double v =
                sram::worst_hold_static_power(cell, sram::MetricOptions{});
            if (++s.metric_calls == 3)
                sim.cancel->cancel();
            return v;
        };
        s.result =
            batched ? mc::run_monte_carlo_batched(ctx, cfg, sampler, kN,
                                                  kSeed, metric,
                                                  /*threads=*/1)
                    : mc::run_monte_carlo(ctx, cfg, sampler, kN, kSeed,
                                          metric, /*threads=*/1);
        return s;
    };

    const Scenario serial = run(false);
    const Scenario batched = run(true);
    for (const Scenario* s : {&serial, &batched}) {
        EXPECT_EQ(s->metric_calls, 3);
        ASSERT_EQ(s->result.samples.size(), kN);
        for (std::size_t i = 0; i < kN; ++i)
            EXPECT_EQ(s->result.censored[i], i < 3 ? 0 : 1) << "i=" << i;
        EXPECT_EQ(s->result.n_censored, kN - 3);
        EXPECT_EQ(s->result.summary.count, 3u);
    }
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(batched.result.samples[i], serial.result.samples[i]) << i;

    // The conservative interval stays honest about the censored tail: the
    // 3 evaluated passes prove no more than 3-of-6 worst-case, no less
    // than 6-of-6 best-case.
    const mc::YieldInterval cens = mc::censored_yield_interval(
        3, 3, batched.result.n_censored);
    EXPECT_DOUBLE_EQ(cens.lower, mc::yield_interval(3, 6).lower);
    EXPECT_DOUBLE_EQ(cens.upper, mc::yield_interval(6, 6).upper);
    EXPECT_LT(cens.lower, mc::yield_interval(3, 3).lower);
}

// ------------------------------------------------------- stall fault site

TEST(StallFault, SiteParsesAndRoundTrips) {
    const auto plan = fault::FaultPlan::parse("stall@0");
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(plan.fires(fault::Site::kStall, 0));
    EXPECT_FALSE(plan.fires(fault::Site::kStall, 1));
    EXPECT_STREQ(fault::to_string(fault::Site::kStall), "stall");
}

TEST(StallFault, ParkedSolveUnwindsWhenTokenFires) {
    spice::SimConfig cfg;
    cfg.cancel = std::make_shared<spice::CancelToken>();
    cfg.fault_spec = "stall@0";
    spice::SimContext ctx(cfg);
    std::thread canceller([token = cfg.cancel] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        token->cancel();
    });
    spice::Circuit c = divider();
    const spice::DcResult r = spice::solve_dc(c, ctx);
    canceller.join();
    EXPECT_FALSE(r.converged);
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->code, spice::SolveErrorCode::kCancelled);
    // Cancellation is sticky until reset; with the token re-armed and the
    // stall op index already consumed, the next solve runs clean.
    cfg.cancel->reset();
    const spice::DcResult again = spice::solve_dc(c, ctx);
    EXPECT_TRUE(again.converged);
}

// ------------------------------------------------------- runner watchdog

runner::TaskFn solve_divider_or_throw() {
    return []() -> runner::TaskResult {
        spice::Circuit c = divider();
        const spice::DcResult r =
            spice::solve_dc(c, spice::ambient_context());
        if (!r.converged)
            throw spice::SolveException(*r.error);
        runner::TaskResult res;
        res.set("v", "ok");
        return res;
    };
}

TEST(Watchdog, StalledTaskIsCancelledAndQuarantined) {
    runner::RunnerConfig cfg = runner_config("watchdog_stall");
    cfg.keep_going = true;
    cfg.stall_timeout_s = 0.05;
    runner::Runner r(cfg);
    runner::TaskSpec spec = task("stalls", solve_divider_or_throw());
    spec.sim = spice::SimConfig{};
    spec.sim->fault_spec = "stall@0"; // parks in the stall site forever
    const runner::TaskId stalled = r.add(std::move(spec));
    const runner::TaskId healthy =
        r.add(task("healthy", solve_divider_or_throw()));

    const runner::RunSummary summary = r.run(); // must not throw
    EXPECT_EQ(r.status(stalled), runner::TaskStatus::kQuarantined);
    ASSERT_NE(r.error(stalled), nullptr);
    EXPECT_NE(r.error(stalled)->cause().find("cancelled"),
              std::string::npos);
    EXPECT_EQ(r.status(healthy), runner::TaskStatus::kExecuted);
    EXPECT_EQ(summary.quarantined, 1u);
    EXPECT_EQ(summary.executed, 1u);
    EXPECT_TRUE(summary.degraded());

    // The journal attributes the intervention; BENCH records degradation.
    const std::string journal =
        slurp(cfg.out_dir / (cfg.run_name + "_journal.jsonl"));
    EXPECT_NE(journal.find("\"watchdog\":\"stall\""), std::string::npos);
    const std::string bench =
        slurp(cfg.out_dir / ("BENCH_" + cfg.run_name + ".json"));
    EXPECT_NE(bench.find("\"degraded\":true"), std::string::npos);
}

TEST(Watchdog, TaskTimeoutBoundsAnOverrunningAttempt) {
    runner::RunnerConfig cfg = runner_config("watchdog_timeout");
    cfg.keep_going = true;
    cfg.task_timeout_s = 0.05; // cooperative deadline + watchdog backstop
    runner::Runner r(cfg);
    runner::TaskSpec spec = task("overruns", solve_divider_or_throw());
    spec.sim = spice::SimConfig{};
    spec.sim->fault_spec = "stall@0";
    const runner::TaskId id = r.add(std::move(spec));
    const runner::RunSummary summary = r.run();
    EXPECT_EQ(r.status(id), runner::TaskStatus::kQuarantined);
    EXPECT_TRUE(summary.degraded());
    ASSERT_NE(r.error(id), nullptr);
}

TEST(Watchdog, TokenResetLetsTheRetrySucceed) {
    runner::RunnerConfig cfg = runner_config("watchdog_retry");
    cfg.stall_timeout_s = 0.05;
    runner::Runner r(cfg);
    runner::TaskSpec spec = task("stall_once", solve_divider_or_throw());
    spec.sim = spice::SimConfig{};
    spec.sim->fault_spec = "stall@0"; // only the first attempt's solve parks
    spec.max_attempts = 2;
    const runner::TaskId id = r.add(std::move(spec));
    const runner::RunSummary summary = r.run(); // retry must not throw
    EXPECT_EQ(r.status(id), runner::TaskStatus::kExecuted);
    EXPECT_EQ(r.result(id).get("v"), "ok");
    EXPECT_EQ(summary.executed, 1u);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_FALSE(summary.degraded());
    const std::string journal =
        slurp(cfg.out_dir / (cfg.run_name + "_journal.jsonl"));
    EXPECT_NE(journal.find("\"attempts\":2"), std::string::npos);
}

TEST(Watchdog, BackoffDelaysTheRetry) {
    runner::RunnerConfig cfg = runner_config("backoff");
    cfg.backoff_base_s = 0.02;
    cfg.backoff_max_s = 0.05;
    runner::Runner r(cfg);
    std::atomic<int> calls{0};
    runner::TaskSpec spec = task("flaky", [&]() -> runner::TaskResult {
        if (++calls < 2)
            throw std::runtime_error("transient blip");
        return {};
    });
    spec.max_attempts = 2;
    const runner::TaskId id = r.add(std::move(spec));
    const auto t0 = std::chrono::steady_clock::now();
    r.run();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(r.status(id), runner::TaskStatus::kExecuted);
    EXPECT_EQ(calls.load(), 2);
    // Jitter keeps the delay in [base/2, base) for the first retry.
    EXPECT_GE(elapsed, 0.009);
}

// ------------------------------------------------- drain-and-cancel path

TEST(DrainAndCancel, RequestCancelJournalsQueuedTasksAsCancelled) {
    runner::RunnerConfig cfg = runner_config("drain");
    runner::Runner r(cfg);
    std::atomic<int> ran{0};
    runner::TaskSpec trigger = task("trigger", [&]() -> runner::TaskResult {
        ++ran;
        r.request_cancel();
        return {};
    });
    const runner::TaskId first = r.add(std::move(trigger));
    std::vector<runner::TaskId> rest;
    for (int i = 0; i < 3; ++i)
        rest.push_back(r.add(task("queued_" + std::to_string(i),
                                  [&]() -> runner::TaskResult {
                                      ++ran;
                                      return {};
                                  })));

    const runner::RunSummary summary = r.run(); // drains, does not throw
    EXPECT_EQ(ran.load(), 1); // only the trigger ever executed
    EXPECT_EQ(r.status(first), runner::TaskStatus::kExecuted);
    for (const runner::TaskId id : rest)
        EXPECT_EQ(r.status(id), runner::TaskStatus::kCancelled);
    EXPECT_EQ(summary.cancelled, 3u);
    EXPECT_EQ(summary.executed, 1u);
    EXPECT_TRUE(summary.degraded());
    const std::string bench =
        slurp(cfg.out_dir / ("BENCH_" + cfg.run_name + ".json"));
    EXPECT_NE(bench.find("\"cancelled\":3"), std::string::npos);
    EXPECT_NE(bench.find("\"degraded\":true"), std::string::npos);
}

} // namespace
} // namespace tfetsram
