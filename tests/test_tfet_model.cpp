// TFET device-physics tests: calibration anchors, the hallmark steep
// subthreshold swing, unidirectional conduction (the property the whole
// paper revolves around), reverse-branch anchors, derivative consistency,
// mirror symmetry, and oxide-thickness sensitivity.

#include <gtest/gtest.h>

#include <cmath>

#include "device/models.hpp"
#include "device/tfet_model.hpp"

namespace tfetsram::device {
namespace {

const TfetParams kDefault{};

TEST(TfetModel, CalibrationAnchors) {
    const TfetModel m(kDefault);
    EXPECT_NEAR(m.iv(1.0, 1.0).ids, 1e-4, 1e-4 * 0.02);
    EXPECT_NEAR(m.iv(0.0, 1.0).ids, 1e-17, 1e-17 * 0.05);
}

TEST(TfetModel, OnOffRatioThirteenDecades) {
    const TfetModel m(kDefault);
    const double ratio = m.iv(1.0, 1.0).ids / m.iv(0.0, 1.0).ids;
    EXPECT_NEAR(std::log10(ratio), 13.0, 0.1);
}

TEST(TfetModel, SteepSwingNearThreshold) {
    // TFET selling point: swing well below the 60 mV/dec MOSFET limit at
    // low vgs; the average over the full 1 V swing is 1 V / 13 dec = 77 mV.
    const TfetModel m(kDefault);
    const double i1 = m.iv(0.05, 1.0).ids;
    const double i2 = m.iv(0.15, 1.0).ids;
    const double swing_mv = 0.1 / std::log10(i2 / i1) * 1e3;
    EXPECT_LT(swing_mv, 40.0);
    EXPECT_GT(swing_mv, 5.0);
}

TEST(TfetModel, SwingFlattensAtHighVgs) {
    const TfetModel m(kDefault);
    const double low =
        0.1 / std::log10(m.iv(0.15, 1.0).ids / m.iv(0.05, 1.0).ids);
    const double high =
        0.1 / std::log10(m.iv(0.95, 1.0).ids / m.iv(0.85, 1.0).ids);
    EXPECT_GT(high, 2.0 * low) << "swing must degrade with overdrive";
}

TEST(TfetModel, MonotoneInVgsForward) {
    const TfetModel m(kDefault);
    double prev = 0.0;
    for (double vgs = 0.0; vgs <= 1.2; vgs += 0.05) {
        const double i = m.iv(vgs, 0.8).ids;
        EXPECT_GT(i, prev) << "vgs=" << vgs;
        prev = i;
    }
}

TEST(TfetModel, OutputCharacteristicSaturates) {
    const TfetModel m(kDefault);
    const double i_040 = m.iv(0.8, 0.40).ids;
    const double i_080 = m.iv(0.8, 0.80).ids;
    // Early saturation: doubling vds past ~3 v_sat gains little.
    EXPECT_LT(i_080 / i_040, 1.35);
    EXPECT_GT(i_080, i_040);
}

TEST(TfetModel, ZeroVdsZeroCurrent) {
    const TfetModel m(kDefault);
    EXPECT_DOUBLE_EQ(m.iv(0.8, 0.0).ids, 0.0);
    EXPECT_DOUBLE_EQ(m.iv(0.0, 0.0).ids, 0.0);
}

// --- Unidirectional conduction (paper Fig. 2b) ---

TEST(TfetModel, ReverseDiodeAnchors) {
    // The calibrated p-i-n branch (gate off): ~1e-11 A at -0.6 V, ~1e-7 at
    // -0.8 V, approaching the on-current scale at -1.0 V. These anchors set
    // the outward-access static-power penalty of Sec. 3 (~5 / ~9 orders at
    // 0.6 / 0.8 V).
    const TfetModel m(kDefault);
    EXPECT_NEAR(std::log10(-m.iv(0.0, -0.6).ids), -11.0, 0.3);
    EXPECT_NEAR(std::log10(-m.iv(0.0, -0.8).ids), -7.0, 0.3);
    EXPECT_NEAR(std::log10(-m.iv(0.0, -1.0).ids), -5.1, 0.4);
}

TEST(TfetModel, GateControlCompressedAtHighReverseBias) {
    // Fig. 2(b): at low reverse bias the gate commands ~13 decades; at
    // vds = -1 V the p-i-n diode floor compresses its authority to under
    // one decade.
    const TfetModel m(kDefault);
    const double i_off = -m.iv(0.0, -1.0).ids;
    const double i_on = -m.iv(1.0, -1.0).ids;
    EXPECT_LT(i_on / i_off, 10.0);
    EXPECT_GT(i_on / i_off, 1.0);
}

TEST(TfetModel, GateModulatesAtLowReverseBias) {
    // At small reverse bias the gated tunneling path still responds.
    const TfetModel m(kDefault);
    const double i_off = -m.iv(0.0, -0.15).ids;
    const double i_on = -m.iv(1.0, -0.15).ids;
    EXPECT_GT(i_on / i_off, 1e3);
}

TEST(TfetModel, ReverseOnCurrentBelowForwardExceptNearEndpoints) {
    // Fig. 2(b): the reverse on-current sits well below the forward
    // on-current "except for VDS close to 1V or 0V".
    const TfetModel m(kDefault);
    for (double v : {0.3, 0.4, 0.5, 0.6, 0.7}) {
        const double fwd = m.iv(1.0, v).ids;
        const double rev = -m.iv(1.0, -v).ids;
        EXPECT_LT(rev, 0.6 * fwd) << "vds=" << v;
    }
    // ... but comparable near 1 V and near 0 (the paper's caveat).
    EXPECT_GT(-m.iv(1.0, -1.0).ids, 0.2 * m.iv(1.0, 1.0).ids);
    EXPECT_GT(-m.iv(1.0, -0.05).ids, 0.5 * m.iv(1.0, 0.05).ids);
}

TEST(TfetModel, ReverseBranchLinearizedBeyondVcrit) {
    // No overflow / superexponential blowup at large reverse bias.
    const TfetModel m(kDefault);
    const double i_15 = -m.iv(0.0, -1.5).ids;
    const double i_20 = -m.iv(0.0, -2.0).ids;
    EXPECT_TRUE(std::isfinite(i_20));
    EXPECT_LT(i_20 / i_15, 10.0) << "linear extension, not exponential";
}

// --- Derivative consistency (Newton depends on it) ---

class TfetDerivatives
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(TfetDerivatives, MatchFiniteDifferences) {
    const TfetModel m(kDefault);
    const auto [vgs, vds] = GetParam();
    const double h = 1e-6;
    const spice::IvSample s = m.iv(vgs, vds);
    const double gm_fd =
        (m.iv(vgs + h, vds).ids - m.iv(vgs - h, vds).ids) / (2 * h);
    const double gds_fd =
        (m.iv(vgs, vds + h).ids - m.iv(vgs, vds - h).ids) / (2 * h);
    const double tol_gm = 1e-9 + 1e-4 * std::fabs(gm_fd);
    const double tol_gds = 1e-9 + 1e-4 * std::fabs(gds_fd);
    EXPECT_NEAR(s.gm, gm_fd, tol_gm);
    EXPECT_NEAR(s.gds, gds_fd, tol_gds);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, TfetDerivatives,
    ::testing::Values(std::pair{0.0, 0.5}, std::pair{0.4, 0.1},
                      std::pair{0.8, 0.8}, std::pair{1.0, 0.05},
                      std::pair{0.6, -0.3}, std::pair{0.2, -0.9},
                      std::pair{-0.2, 0.4}, std::pair{0.9, -0.05}));

TEST(TfetModel, ContinuousAcrossVdsZero) {
    const TfetModel m(kDefault);
    const double eps = 1e-9;
    const spice::IvSample lo = m.iv(0.8, -eps);
    const spice::IvSample hi = m.iv(0.8, +eps);
    EXPECT_NEAR(lo.ids, hi.ids, 1e-12);
    EXPECT_NEAR(lo.gds, hi.gds, 1e-6 * std::fabs(hi.gds) + 1e-12);
}

// --- C-V ---

TEST(TfetModel, CapacitancesPositiveAndBounded) {
    const TfetModel m(kDefault);
    for (double vgs = -1.0; vgs <= 1.2; vgs += 0.2) {
        for (double vds = -1.0; vds <= 1.2; vds += 0.2) {
            const spice::CvSample c = m.cv(vgs, vds);
            EXPECT_GT(c.cgs, 0.0);
            EXPECT_GT(c.cgd, 0.0);
            EXPECT_LT(c.cgs, 2e-15);
            EXPECT_LT(c.cgd, 2e-15);
        }
    }
}

TEST(TfetModel, MillerCapacitanceDrainDominatedInSaturation) {
    // In saturation the TFET channel charge couples to the drain (the
    // enhanced Miller effect); near vds = 0 it splits roughly evenly.
    const TfetModel m(kDefault);
    const spice::CvSample sat = m.cv(0.8, 0.8);
    EXPECT_GT(sat.cgd, 2.0 * sat.cgs);
    const spice::CvSample lin = m.cv(0.8, 0.0);
    EXPECT_NEAR(lin.cgd / lin.cgs, 1.0, 0.25);
}

// --- Polarity mirror ---

TEST(PtfetMirror, MirrorsCurrentAndDerivatives) {
    const auto n = make_ntfet();
    const auto p = make_ptfet();
    for (double vgs : {-0.8, -0.3, 0.2}) {
        for (double vds : {-0.8, -0.2, 0.5}) {
            const spice::IvSample sn = n->iv(-vgs, -vds);
            const spice::IvSample sp = p->iv(vgs, vds);
            EXPECT_NEAR(sp.ids, -sn.ids, 1e-18 + 1e-12 * std::fabs(sn.ids));
            EXPECT_NEAR(sp.gm, sn.gm, 1e-15 + 1e-9 * std::fabs(sn.gm));
            EXPECT_NEAR(sp.gds, sn.gds, 1e-15 + 1e-9 * std::fabs(sn.gds));
        }
    }
}

TEST(PtfetMirror, ForwardConductionNegativeBias) {
    // pTFET conducts source->drain with vgs, vds < 0.
    const auto p = make_ptfet();
    EXPECT_NEAR(p->iv(-1.0, -1.0).ids, -1e-4, 1e-6);
    EXPECT_NEAR(p->iv(0.0, -1.0).ids, -1e-17, 1e-18);
}

// --- Process variation hook ---

TEST(TfetModel, ThinnerOxideRaisesOnCurrent) {
    TfetParams thin = kDefault;
    thin.tox = 0.95 * thin.tox_nom;
    TfetParams thick = kDefault;
    thick.tox = 1.05 * thick.tox_nom;
    const TfetModel m_thin(thin);
    const TfetModel m_nom(kDefault);
    const TfetModel m_thick(thick);
    const double i_thin = m_thin.iv(0.5, 0.8).ids;
    const double i_nom = m_nom.iv(0.5, 0.8).ids;
    const double i_thick = m_thick.iv(0.5, 0.8).ids;
    EXPECT_GT(i_thin, i_nom);
    EXPECT_GT(i_nom, i_thick);
    // Exponential sensitivity: +/-5 % tox moves mid-swing current a lot.
    EXPECT_GT(i_thin / i_thick, 2.0);
}

TEST(TfetModel, CalibrationRejectsBadAnchors) {
    TfetParams bad = kDefault;
    bad.i_off = 1e-3; // off above on
    EXPECT_THROW(TfetModel{bad}, contract_violation);
}

} // namespace
} // namespace tfetsram::device
