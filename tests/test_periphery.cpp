// Periphery tests: precharge/equalize networks, tri-state write drivers,
// and the latch sense amplifier, each on real transistor netlists — plus
// a full read path (cell + precharge + sense amp) end to end.

#include <gtest/gtest.h>

#include <cmath>

#include "sram/designs.hpp"
#include "sram/operations.hpp"
#include "sram/periphery.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"

namespace tfetsram::sram {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

PeripheryConfig pconfig(bool tfet = true) {
    PeripheryConfig cfg;
    cfg.tfet = tfet;
    cfg.models = models();
    return cfg;
}

/// Fixture: a bare bitline pair with caps and supply.
struct Lines {
    spice::Circuit ckt;
    spice::NodeId vdd = 0;
    spice::NodeId bl = 0;
    spice::NodeId blb = 0;

    Lines() {
        vdd = ckt.add_node("vdd");
        bl = ckt.add_node("bl");
        blb = ckt.add_node("blb");
        ckt.add_vsource("Vvdd", vdd, spice::kGround,
                        spice::Waveform::dc(0.8));
        ckt.add_capacitor("Cbl", bl, spice::kGround, 10e-15);
        ckt.add_capacitor("Cblb", blb, spice::kGround, 10e-15);
    }
};

TEST(Periphery, PrechargePullsBothLinesHigh) {
    Lines f;
    const Precharge pre =
        attach_precharge(f.ckt, "", f.bl, f.blb, f.vdd, pconfig());
    // Lines start unequal (leakage-floating); precharge pulse fixes them.
    f.ckt.add_resistor("Rleak", f.bl, spice::kGround, 1e9);
    pre.v_pre->set_waveform(
        spice::Waveform::pwl({{0.1e-9, 0.8}, {0.12e-9, 0.0},
                              {1.0e-9, 0.0}, {1.02e-9, 0.8}}));
    const spice::TransientResult tr =
        spice::solve_transient(f.ckt, {}, 1.2e-9);
    ASSERT_TRUE(tr.completed) << tr.message;
    EXPECT_NEAR(tr.voltage_at(f.bl, 1.0e-9), 0.8, 0.02);
    EXPECT_NEAR(tr.voltage_at(f.blb, 1.0e-9), 0.8, 0.02);
}

TEST(Periphery, EqualizerBalancesEitherPolarity) {
    // The anti-parallel pair must equalize regardless of which line is
    // high — the property a single unidirectional device lacks.
    for (bool bl_high : {true, false}) {
        Lines f;
        attach_precharge(f.ckt, "", f.bl, f.blb, f.vdd, pconfig())
            .v_pre->set_waveform(
                spice::Waveform::pwl({{0.1e-9, 0.8}, {0.12e-9, 0.0}}));
        // Impose an initial imbalance via a temporary clamp that releases
        // before the equalize phase.
        f.ckt.add_switch("Sinit", f.bl, f.vdd, 1e2, 1e12,
                         bl_high
                             ? spice::Waveform::pwl({{0.05e-9, 1.0},
                                                     {0.06e-9, 0.0}})
                             : spice::Waveform::dc(0.0));
        f.ckt.add_switch("Sinitb", f.blb, f.vdd, 1e2, 1e12,
                         bl_high
                             ? spice::Waveform::dc(0.0)
                             : spice::Waveform::pwl({{0.05e-9, 1.0},
                                                     {0.06e-9, 0.0}}));
        const spice::TransientResult tr =
            spice::solve_transient(f.ckt, {}, 1e-9);
        ASSERT_TRUE(tr.completed) << tr.message;
        EXPECT_NEAR(tr.final_voltage(f.bl), tr.final_voltage(f.blb), 0.02)
            << "bl_high=" << bl_high;
    }
}

TEST(Periphery, WriteDriverDrivesAndTristates) {
    Lines f;
    const WriteDriver drv =
        attach_write_driver(f.ckt, "", f.bl, f.blb, f.vdd, pconfig());
    // Enabled with data = 1: BL high, BLB low.
    drv.v_data->set_waveform(spice::Waveform::dc(0.8));
    drv.v_datab->set_waveform(spice::Waveform::dc(0.0));
    drv.v_en_n->set_waveform(spice::Waveform::dc(0.8));
    drv.v_en_p->set_waveform(spice::Waveform::dc(0.0));
    const spice::DcResult on = spice::solve_dc(f.ckt, {});
    ASSERT_TRUE(on.converged);
    EXPECT_GT(spice::node_voltage(on.x, f.bl), 0.75);
    EXPECT_LT(spice::node_voltage(on.x, f.blb), 0.05);

    // Disabled: both lines float (gmin leaks them toward ground at DC,
    // but the driver itself must not hold them).
    drv.v_en_n->set_waveform(spice::Waveform::dc(0.0));
    drv.v_en_p->set_waveform(spice::Waveform::dc(0.8));
    f.ckt.add_vsource("Vprobe", f.bl, spice::kGround,
                      spice::Waveform::dc(0.4));
    const spice::DcResult off = spice::solve_dc(f.ckt, {});
    ASSERT_TRUE(off.converged);
    // The probe holds 0.4 V; a still-on driver would fight it hard.
    const auto* probe = f.ckt.voltage_sources().back();
    EXPECT_LT(std::fabs(probe->delivered_current(off.x)), 1e-8);
}

class SenseAmpPolarity : public ::testing::TestWithParam<bool> {};

TEST_P(SenseAmpPolarity, RegeneratesSmallDifferentialToFullSwing) {
    const bool bl_high = GetParam();
    Lines f;
    const SenseAmp sa =
        attach_sense_amp(f.ckt, "", f.bl, f.blb, f.vdd, pconfig());
    // Impose a 100 mV split via clamps that release before SAE fires.
    const spice::NodeId lowrail = f.ckt.add_node("lowrail");
    f.ckt.add_vsource("Vlow", lowrail, spice::kGround,
                      spice::Waveform::dc(0.7));
    const spice::Waveform release =
        spice::Waveform::pwl({{0.1e-9, 1.0}, {0.11e-9, 0.0}});
    f.ckt.add_switch("Sa", bl_high ? f.bl : f.blb, f.vdd, 1e2, 1e12, release);
    f.ckt.add_switch("Sb", bl_high ? f.blb : f.bl, lowrail, 1e2, 1e12,
                     release);
    sa.v_sae->set_waveform(
        spice::Waveform::pwl({{0.2e-9, 0.0}, {0.21e-9, 0.8}}));
    const spice::TransientResult tr = spice::solve_transient(f.ckt, {}, 1.5e-9);
    ASSERT_TRUE(tr.completed) << tr.message;
    const double v_bl = tr.final_voltage(f.bl);
    const double v_blb = tr.final_voltage(f.blb);
    EXPECT_GT(bl_high ? v_bl : v_blb, 0.75);
    EXPECT_LT(bl_high ? v_blb : v_bl, 0.05);
}

INSTANTIATE_TEST_SUITE_P(BothPolarities, SenseAmpPolarity,
                         ::testing::Bool());

TEST(Periphery, FullReadPathWithRealPeriphery) {
    // The proposed cell read through transistor periphery: precharge, WL
    // assert with GND-lowering RA, differential development, sense-amp
    // regeneration to full swing — no ideal switches in the signal path.
    const CellConfig cc = proposed_design(0.8, models()).config;
    spice::Circuit ckt;
    const auto vdd = ckt.add_node("vdd");
    const auto vss = ckt.add_node("vss");
    const auto bl = ckt.add_node("bl");
    const auto blb = ckt.add_node("blb");
    const auto wl = ckt.add_node("wl");
    const auto q = ckt.add_node("q");
    const auto qb = ckt.add_node("qb");
    ckt.add_vsource("Vvdd", vdd, spice::kGround, spice::Waveform::dc(0.8));
    auto& v_vss = ckt.add_vsource("Vvss", vss, spice::kGround,
                                  spice::Waveform::dc(0.0));
    auto& v_wl = ckt.add_vsource("Vwl", wl, spice::kGround,
                                 spice::Waveform::dc(0.8));
    ckt.add_capacitor("Cbl", bl, spice::kGround, 10e-15);
    ckt.add_capacitor("Cblb", blb, spice::kGround, 10e-15);
    build_6t_devices(ckt, cc, {q, qb, bl, blb, wl, vdd, vss}, "");

    PeripheryConfig pc = pconfig();
    const Precharge pre = attach_precharge(ckt, "p_", bl, blb, vdd, pc);
    const SenseAmp sa = attach_sense_amp(ckt, "s_", bl, blb, vdd, pc);

    // Timeline: precharge 0.05-0.55 ns; RA from 0.1 ns; WL 0.7-1.2 ns;
    // SAE at 1.0 ns.
    pre.v_pre->set_waveform(spice::Waveform::pwl(
        {{0.05e-9, 0.8}, {0.06e-9, 0.0}, {0.55e-9, 0.0}, {0.56e-9, 0.8}}));
    v_vss.set_waveform(spice::Waveform::pwl(
        {{0.1e-9, 0.0}, {0.12e-9, -0.24}, {1.6e-9, -0.24}, {1.62e-9, 0.0}}));
    v_wl.set_waveform(spice::Waveform::pwl(
        {{0.7e-9, 0.8}, {0.705e-9, 0.0}, {1.2e-9, 0.0}, {1.205e-9, 0.8}}));
    sa.v_sae->set_waveform(
        spice::Waveform::pwl({{1.0e-9, 0.0}, {1.01e-9, 0.8}}));

    // Hold q = 0: the cell discharges BL, so the SA must drive BL low.
    ckt.prepare();
    la::Vector guess(ckt.num_unknowns(), 0.0);
    guess[vdd - 1] = 0.8;
    guess[qb - 1] = 0.8;
    guess[bl - 1] = 0.8;
    guess[blb - 1] = 0.8;
    guess[wl - 1] = 0.8;
    const spice::TransientResult tr =
        spice::solve_transient(ckt, {}, 1.8e-9, nullptr, &guess);
    ASSERT_TRUE(tr.completed) << tr.message;

    EXPECT_LT(tr.final_voltage(bl), 0.05) << "SA must slam BL low (q = 0)";
    EXPECT_GT(tr.final_voltage(blb), 0.75);
    // Non-destructive: the cell still holds its 0.
    EXPECT_LT(tr.final_voltage(q), 0.2);
    EXPECT_GT(tr.final_voltage(qb), 0.6);
}

TEST(Periphery, FullWritePathWithRealDriver) {
    // Cell + transistor write driver: the driver pulls the bitline pair to
    // the datum, the wordline opens, the cell flips — no ideal bitline
    // sources in the path.
    const CellConfig cc = proposed_design(0.8, models()).config;
    spice::Circuit ckt;
    const auto vdd = ckt.add_node("vdd");
    const auto bl = ckt.add_node("bl");
    const auto blb = ckt.add_node("blb");
    const auto wl = ckt.add_node("wl");
    const auto q = ckt.add_node("q");
    const auto qb = ckt.add_node("qb");
    ckt.add_vsource("Vvdd", vdd, spice::kGround, spice::Waveform::dc(0.8));
    auto& v_wl = ckt.add_vsource("Vwl", wl, spice::kGround,
                                 spice::Waveform::dc(0.8));
    ckt.add_capacitor("Cbl", bl, spice::kGround, 10e-15);
    ckt.add_capacitor("Cblb", blb, spice::kGround, 10e-15);
    build_6t_devices(ckt, cc, {q, qb, bl, blb, wl, vdd, spice::kGround}, "");
    const Precharge pre = attach_precharge(ckt, "p_", bl, blb, vdd, pconfig());
    const WriteDriver drv =
        attach_write_driver(ckt, "d_", bl, blb, vdd, pconfig());
    // Initialization clamp: start with q = 0.
    ckt.add_switch("Sinit", q, spice::kGround, 1e2, 1e12,
                   spice::Waveform::pwl({{20e-12, 1.0}, {25e-12, 0.0}}));

    // Timeline: precharge until 0.3 ns; driver enabled (data = 1) from
    // 0.4 ns; WL 0.6-1.0 ns.
    pre.v_pre->set_waveform(spice::Waveform::pwl(
        {{0.05e-9, 0.8}, {0.06e-9, 0.0}, {0.3e-9, 0.0}, {0.31e-9, 0.8}}));
    drv.v_data->set_waveform(spice::Waveform::dc(0.8));
    drv.v_datab->set_waveform(spice::Waveform::dc(0.0));
    drv.v_en_n->set_waveform(
        spice::Waveform::pwl({{0.4e-9, 0.0}, {0.41e-9, 0.8}}));
    drv.v_en_p->set_waveform(
        spice::Waveform::pwl({{0.4e-9, 0.8}, {0.41e-9, 0.0}}));
    v_wl.set_waveform(spice::Waveform::pwl(
        {{0.6e-9, 0.8}, {0.605e-9, 0.0}, {1.0e-9, 0.0}, {1.005e-9, 0.8}}));

    ckt.prepare();
    la::Vector guess(ckt.num_unknowns(), 0.0);
    guess[vdd - 1] = 0.8;
    guess[qb - 1] = 0.8;
    const spice::TransientResult tr =
        spice::solve_transient(ckt, {}, 1.5e-9, nullptr, &guess);
    ASSERT_TRUE(tr.completed) << tr.message;
    EXPECT_GT(tr.final_voltage(q), 0.7) << "write 1 must land";
    EXPECT_LT(tr.final_voltage(qb), 0.1);
}

} // namespace
} // namespace tfetsram::sram
