// Additional engine coverage: width scaling, model mirroring algebra,
// power accounting with transistors, solver-option behaviour, integrator
// choice, and the Fig. 5 unidirectional-write current-flow claim.

#include <gtest/gtest.h>

#include <cmath>

#include "device/models.hpp"
#include "sram/designs.hpp"
#include "sram/operations.hpp"
#include "spice/dc.hpp"
#include "spice/report.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"

namespace tfetsram {
namespace {

TEST(Transistor, CurrentScalesLinearlyWithWidth) {
    spice::Circuit c;
    const auto vdd = c.add_node("vdd");
    const auto d1 = c.add_node("d1");
    const auto d2 = c.add_node("d2");
    c.add_vsource("V", vdd, spice::kGround, spice::Waveform::dc(0.8));
    c.add_vsource("V1", d1, spice::kGround, spice::Waveform::dc(0.8));
    c.add_vsource("V2", d2, spice::kGround, spice::Waveform::dc(0.8));
    auto& m1 = c.add_transistor("M1", device::make_ntfet(), d1, vdd,
                                spice::kGround, 1.0);
    auto& m3 = c.add_transistor("M3", device::make_ntfet(), d2, vdd,
                                spice::kGround, 3.0);
    const spice::DcResult r = spice::solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(m3.drain_current(r.x), 3.0 * m1.drain_current(r.x),
                std::fabs(m1.drain_current(r.x)) * 1e-9);
}

TEST(MirrorModel, DoubleMirrorIsIdentity) {
    const auto n = device::make_ntfet();
    const auto nn = std::make_shared<device::MirrorModel>(
        std::make_shared<device::MirrorModel>(n, "x"), "xx");
    for (double vgs : {-0.5, 0.2, 0.9}) {
        for (double vds : {-0.7, 0.1, 0.8}) {
            const spice::IvSample a = n->iv(vgs, vds);
            const spice::IvSample b = nn->iv(vgs, vds);
            EXPECT_DOUBLE_EQ(a.ids, b.ids);
            EXPECT_DOUBLE_EQ(a.gm, b.gm);
            EXPECT_DOUBLE_EQ(a.gds, b.gds);
        }
    }
}

TEST(PowerReport, TransistorDissipationBalancesSources) {
    // Resistively-loaded on-transistor: source power equals total
    // dissipation to solver tolerance.
    spice::Circuit c;
    const auto vdd = c.add_node("vdd");
    const auto out = c.add_node("out");
    c.add_vsource("V", vdd, spice::kGround, spice::Waveform::dc(0.8));
    c.add_resistor("R", vdd, out, 1e4);
    c.add_transistor("M", device::make_nmos(), out, vdd, spice::kGround, 1.0);
    const spice::DcResult r = spice::solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    const spice::PowerReport rep = spice::power_report(c, r.x);
    EXPECT_GT(rep.dissipated, 1e-7);
    EXPECT_NEAR(rep.delivered_by_sources, rep.dissipated,
                rep.dissipated * 1e-3 + 1e-12);
}

TEST(Solver, BackwardEulerOptionWorks) {
    // BE is overdamped but must land on the same settled values.
    spice::Circuit c;
    const auto in = c.add_node("in");
    const auto out = c.add_node("out");
    c.add_vsource("V", in, spice::kGround,
                  spice::Waveform::pwl({{1e-10, 0.0}, {1.1e-10, 1.0}}));
    c.add_resistor("R", in, out, 1e3);
    c.add_capacitor("C", out, spice::kGround, 1e-13);
    spice::SolverOptions opts;
    opts.integrator = spice::Integrator::kBackwardEuler;
    const spice::TransientResult tr = spice::solve_transient(c, opts, 2e-9);
    ASSERT_TRUE(tr.completed) << tr.message;
    EXPECT_NEAR(tr.final_voltage(out), 1.0, 1e-3);
}

TEST(Solver, MaxStepGuardTerminates) {
    spice::Circuit c;
    const auto in = c.add_node("in");
    c.add_vsource("V", in, spice::kGround, spice::Waveform::dc(1.0));
    c.add_resistor("R", in, spice::kGround, 1e3);
    spice::SolverOptions opts;
    opts.max_steps = 3;
    opts.dt_max = 1e-13;
    const spice::TransientResult tr = spice::solve_transient(c, opts, 1e-9);
    EXPECT_FALSE(tr.completed);
    EXPECT_NE(tr.message.find("max step count"), std::string::npos);
}

TEST(Solver, SourceSteppingRecoversColdStart) {
    // A TFET latch with no initial guess: one of the homotopies must land
    // a converged operating point.
    const device::ModelSet m = device::make_model_set();
    spice::Circuit c;
    const auto vdd = c.add_node("vdd");
    const auto a = c.add_node("a");
    const auto b = c.add_node("b");
    c.add_vsource("V", vdd, spice::kGround, spice::Waveform::dc(0.8));
    c.add_transistor("P1", m.ptfet, a, b, vdd, 1.0);
    c.add_transistor("N1", m.ntfet, a, b, spice::kGround, 1.0);
    c.add_transistor("P2", m.ptfet, b, a, vdd, 1.0);
    c.add_transistor("N2", m.ntfet, b, a, spice::kGround, 1.0);
    const spice::DcResult r = spice::solve_dc(c, {});
    EXPECT_TRUE(r.converged) << r.strategy;
}

TEST(Fig5CurrentFlow, OnlyOneAccessConductsDuringTfetWrite) {
    // Fig. 5(c)/(d): in the 6T inpTFET cell, only the access transistor on
    // the side being pulled up carries meaningful current during a write;
    // its partner is blocked by unidirectional conduction.
    const device::ModelSet m = device::make_model_set();
    sram::CellConfig cfg;
    cfg.kind = sram::CellKind::kTfet6T;
    cfg.access = sram::AccessDevice::kInwardP;
    cfg.beta = 0.6;
    cfg.models = m;
    sram::SramCell cell = sram::build_cell(cfg);

    const sram::OperationWindow w =
        sram::program_write(cell, /*value=*/true, 400e-12);
    const sram::HoldState hs = sram::solve_hold_state(cell, false, {});
    ASSERT_TRUE(hs.state_ok);
    const spice::TransientResult tr = spice::solve_transient(
        cell.circuit, {}, w.wl_start + 60e-12, nullptr, &hs.x);
    ASSERT_TRUE(tr.completed) << tr.message;

    // Mid-write currents through the two access devices.
    const spice::Transistor* axl = nullptr;
    const spice::Transistor* axr = nullptr;
    for (const spice::Transistor* t : cell.circuit.transistors()) {
        if (t->label() == "AXL")
            axl = t;
        if (t->label() == "AXR")
            axr = t;
    }
    ASSERT_NE(axl, nullptr);
    ASSERT_NE(axr, nullptr);
    const la::Vector& x = tr.state(tr.size() - 1);
    const double i_axl = std::fabs(axl->drain_current(x));
    const double i_axr = std::fabs(axr->drain_current(x));
    EXPECT_GT(i_axl, 1e-7) << "the pull-up side access must conduct";
    EXPECT_LT(i_axr, 0.05 * i_axl)
        << "the opposite access is blocked by unidirectionality";
}

TEST(Fig5CurrentFlow, BothAccessesConductDuringCmosWrite) {
    // Fig. 5(a)/(b): the CMOS cell writes through both pass gates.
    const device::ModelSet m = device::make_model_set();
    sram::CellConfig cfg;
    cfg.kind = sram::CellKind::kCmos6T;
    cfg.access = sram::AccessDevice::kCmos;
    cfg.beta = 1.5;
    cfg.models = m;
    sram::SramCell cell = sram::build_cell(cfg);

    const sram::OperationWindow w =
        sram::program_write(cell, /*value=*/true, 400e-12);
    const sram::HoldState hs = sram::solve_hold_state(cell, false, {});
    ASSERT_TRUE(hs.state_ok);
    const spice::TransientResult tr = spice::solve_transient(
        cell.circuit, {}, w.wl_start + 15e-12, nullptr, &hs.x);
    ASSERT_TRUE(tr.completed) << tr.message;

    const spice::Transistor* axl = nullptr;
    const spice::Transistor* axr = nullptr;
    for (const spice::Transistor* t : cell.circuit.transistors()) {
        if (t->label() == "AXL")
            axl = t;
        if (t->label() == "AXR")
            axr = t;
    }
    const la::Vector& x = tr.state(tr.size() - 1);
    EXPECT_GT(std::fabs(axl->drain_current(x)), 1e-6);
    EXPECT_GT(std::fabs(axr->drain_current(x)), 1e-6);
}

} // namespace
} // namespace tfetsram
