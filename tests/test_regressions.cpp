// Regression tests for failure modes found while bringing the
// reproduction up. Each encodes a real bug class:
//  1. discontinuous C-V across vds = 0 caused Newton limit cycles when a
//     node hovered at another terminal's potential;
//  2. differentiating the asinh-compressed current table starved the
//     Jacobian at the I = 0 cliff, collapsing bistable cells to their
//     metastable point;
//  3. trapezoidal history could wedge Newton on sharp source edges
//     (fixed by the per-step backward-Euler fallback).

#include <gtest/gtest.h>

#include <cmath>

#include "device/models.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"

namespace tfetsram {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

TEST(Regression, MosfetCvContinuousAcrossVdsZero) {
    // Bug 1: cgs/cgd swapped discontinuously at vds = 0.
    const auto m = device::make_nmos();
    for (double vgs : {0.2, 0.5, 0.8, 1.1}) {
        const spice::CvSample lo = m->cv(vgs, -1e-9);
        const spice::CvSample hi = m->cv(vgs, +1e-9);
        EXPECT_NEAR(lo.cgs, hi.cgs, 1e-20) << "vgs=" << vgs;
        EXPECT_NEAR(lo.cgd, hi.cgd, 1e-20) << "vgs=" << vgs;
    }
}

TEST(Regression, MosfetCvSwapIdentityExact) {
    const auto m = device::make_nmos();
    for (double vgs : {0.3, 0.7}) {
        for (double vds : {0.1, 0.5, 0.9}) {
            const spice::CvSample fwd = m->cv(vgs + vds, vds);
            const spice::CvSample rev = m->cv(vgs, -vds);
            EXPECT_NEAR(rev.cgs, fwd.cgd, 1e-21);
            EXPECT_NEAR(rev.cgd, fwd.cgs, 1e-21);
        }
    }
}

TEST(Regression, CmosCellShortPulseBisectionCompletes) {
    // Bug 1+3 composite: the CMOS cell at beta = 0.8 with a ~12 ps pulse
    // wedged Newton mid WL-fall when qb hovered at 0 V. The whole
    // bisection must now complete with a finite, small WLcrit.
    sram::CellConfig cfg;
    cfg.kind = sram::CellKind::kCmos6T;
    cfg.access = sram::AccessDevice::kCmos;
    cfg.beta = 0.8;
    cfg.models = models();
    sram::SramCell cell = sram::build_cell(cfg);
    const sram::MetricOptions opts;

    // The exact wedge scenario first:
    const sram::WriteOutcome wedge =
        sram::attempt_write(cell, 1.2e-11, sram::Assist::kNone, opts);
    EXPECT_TRUE(wedge.simulated) << "transient must not wedge";

    const double wl =
        sram::critical_wordline_pulse(cell, sram::Assist::kNone, opts);
    EXPECT_TRUE(std::isfinite(wl));
    EXPECT_LT(wl, 100e-12);
}

TEST(Regression, TabulatedLatchHoldsBothStates) {
    // Bug 2: with derivative-starved tables the cross-coupled pair could
    // only converge to its metastable point, so hold static power came
    // out 8 orders too high.
    sram::SramCell cell =
        sram::build_cell(sram::proposed_design(0.8, models()).config);
    sram::program_hold(cell);
    for (bool q_high : {false, true}) {
        const sram::HoldState hs =
            sram::solve_hold_state(cell, q_high, spice::SolverOptions{});
        ASSERT_TRUE(hs.converged);
        EXPECT_TRUE(hs.state_ok) << "q_high=" << q_high;
        const double sep =
            std::fabs(spice::branch_voltage(hs.x, cell.q, cell.qb));
        EXPECT_GT(sep, 0.75) << "must rest at a stable corner, not the saddle";
    }
}

TEST(Regression, HoldPowerNotPollutedByMetastability) {
    sram::SramCell cell =
        sram::build_cell(sram::proposed_design(0.8, models()).config);
    const double p = sram::worst_hold_static_power(cell, {});
    EXPECT_LT(p, 1e-16) << "metastable operating point would read ~1e-9 W";
}

TEST(Regression, BackwardEulerFallbackSurvivesSharpEdges) {
    // A brutal stimulus: 1 ps edges into a stiff RC divider with a
    // floating middle node. The engine must finish without wedging.
    spice::Circuit c;
    const auto in = c.add_node("in");
    const auto mid = c.add_node("mid");
    c.add_vsource("V", in, spice::kGround,
                  spice::Waveform::pwl({{1e-10, 0.0},
                                        {1.01e-10, 1.0},
                                        {2e-10, 1.0},
                                        {2.01e-10, -0.5},
                                        {3e-10, -0.5},
                                        {3.01e-10, 1.0}}));
    c.add_resistor("R1", in, mid, 1e6);
    c.add_capacitor("C1", mid, spice::kGround, 1e-15);
    c.add_transistor("M", models().ntfet, mid, in, spice::kGround, 1.0);
    const spice::TransientResult tr = spice::solve_transient(c, {}, 5e-10);
    EXPECT_TRUE(tr.completed) << tr.message;
}

TEST(Regression, AllTopologiesSurviveFullMetricSweep) {
    // Broad smoke: every topology must produce finite/sane values for the
    // metric set its design supports, with no solver wedging.
    const sram::MetricOptions opts;
    for (const sram::DesignSpec& d :
         sram::comparison_designs(0.7, models())) {
        sram::SramCell cell = sram::build_cell(d.config);
        const double p = sram::worst_hold_static_power(cell, opts);
        EXPECT_TRUE(std::isfinite(p)) << d.name;
        EXPECT_GT(p, 0.0) << d.name;
        if (d.wlcrit_defined) {
            const double wl =
                sram::critical_wordline_pulse(cell, d.write_assist, opts);
            EXPECT_TRUE(std::isfinite(wl)) << d.name;
        }
        const auto dr =
            sram::dynamic_read_noise_margin(cell, d.read_assist, opts);
        EXPECT_TRUE(dr.valid) << d.name;
        const double td = sram::write_delay(cell, d.write_assist, opts);
        EXPECT_FALSE(std::isnan(td)) << d.name;
        const double rd = sram::read_delay(cell, d.read_assist, opts);
        EXPECT_FALSE(std::isnan(rd)) << d.name;
    }
}

} // namespace
} // namespace tfetsram
