// Statistical harness for the rare-event yield estimator (src/mc/yield.hpp):
// the importance-sampled tail estimate is validated against closed-form
// Gaussian tail probabilities on an analytic linear failure surface
// (fail iff u > k, so p = normal_tail(k) exactly), across several fixed
// seeds, with its confidence interval, sample efficiency, determinism,
// and censoring conservatism all asserted.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>

#include "mc/statistics.hpp"
#include "mc/yield.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"

namespace tfetsram::mc {
namespace {

TEST(NormalHelpers, TailMatchesKnownValues) {
    // Phi(-4) to 6 digits; the 4-sigma failure probability the paper-scale
    // yield targets are expressed in.
    EXPECT_NEAR(normal_tail(4.0), 3.16712e-5, 3.16712e-5 * 1e-4);
    EXPECT_NEAR(normal_tail(0.0), 0.5, 1e-15);
    EXPECT_NEAR(normal_cdf(1.0) + normal_tail(1.0), 1.0, 1e-15);
}

TEST(NormalHelpers, QuantileRoundTrip) {
    for (const double x : {-4.0, -1.5, 0.0, 0.5, 2.0, 4.0})
        EXPECT_NEAR(normal_quantile(normal_cdf(x)), x, 1e-10) << x;
    EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-8);
    EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
    EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
}

TEST(Mixture, DefensiveShiftCapsWeights) {
    const GaussianMixture g = GaussianMixture::shifted(4.0, 0.1);
    EXPECT_FALSE(g.is_nominal());
    EXPECT_NEAR(g.weight_bound(), 10.0, 1e-12);
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
        const double u = g.sample(rng);
        const double w = g.importance_weight(u);
        EXPECT_GT(w, 0.0);
        EXPECT_LE(w, g.weight_bound() * (1.0 + 1e-12)) << u;
    }
    EXPECT_TRUE(GaussianMixture::nominal().is_nominal());
    EXPECT_NEAR(GaussianMixture::nominal().weight_bound(), 1.0, 1e-12);
    // At the shift center the proposal is denser than the nominal, so the
    // weight is far below 1 — that is what buys the variance reduction.
    EXPECT_LT(g.importance_weight(4.0), 0.01);
}

TEST(YieldIS, FourSigmaTailWithinCIAcrossSeeds) {
    // Analytic failure surface: fail iff u > 4, so p = normal_tail(4)
    // exactly. Plain Monte-Carlo needs ~1/p ~ 31600 samples to even
    // observe one failure; the acceptance bar is the true p inside the
    // reported 95% CI at >= 10x fewer solves, for every seed.
    const double p_true = normal_tail(4.0);
    YieldOptions options;
    options.proposal = GaussianMixture::shifted(4.0);
    options.batch = 64;
    options.min_samples = 128;
    options.max_samples = 4096;
    options.min_failures = 8;
    options.target_rel_halfwidth = 0.25;
    const YieldProbe probe = [](double u, std::size_t) {
        return u > 4.0 ? SampleVerdict::kFail : SampleVerdict::kPass;
    };
    for (const std::uint64_t seed : {11u, 17u, 3333u}) {
        const YieldEstimate est = estimate_yield(options, seed, probe);
        EXPECT_TRUE(est.converged) << "seed " << seed;
        EXPECT_GE(p_true, est.lower) << "seed " << seed;
        EXPECT_LE(p_true, est.upper) << "seed " << seed;
        EXPECT_NEAR(est.p_fail, p_true, 0.5 * p_true) << "seed " << seed;
        EXPECT_LE(est.n_samples,
                  static_cast<std::size_t>(0.1 / p_true))
            << "seed " << seed << ": needed " << est.n_samples
            << " samples, 10x-efficiency bar is " << 0.1 / p_true;
        EXPECT_GT(est.sigma_level, 3.5) << "seed " << seed;
        EXPECT_LT(est.sigma_level, 4.5) << "seed " << seed;
    }
}

TEST(YieldIS, DeterministicInSeed) {
    YieldOptions options;
    options.proposal = GaussianMixture::shifted(3.0);
    options.batch = 32;
    options.min_samples = 64;
    options.max_samples = 512;
    options.min_failures = 4;
    const YieldProbe probe = [](double u, std::size_t) {
        return u > 3.0 ? SampleVerdict::kFail : SampleVerdict::kPass;
    };
    const YieldEstimate a = estimate_yield(options, 42, probe);
    const YieldEstimate b = estimate_yield(options, 42, probe);
    EXPECT_EQ(a.p_fail, b.p_fail);
    EXPECT_EQ(a.lower, b.lower);
    EXPECT_EQ(a.upper, b.upper);
    EXPECT_EQ(a.ess, b.ess);
    EXPECT_EQ(a.n_samples, b.n_samples);
    EXPECT_EQ(a.n_fail, b.n_fail);
    EXPECT_EQ(a.converged, b.converged);
}

TEST(YieldIS, AdaptiveStoppingOnCommonFailure) {
    // p = 0.1 under the plain nominal proposal: the adaptive loop should
    // stop well before the budget once the Wilson interval tightens.
    const double threshold = normal_quantile(0.9);
    YieldOptions options; // nominal proposal
    options.batch = 64;
    options.min_samples = 64;
    options.max_samples = 4096;
    options.min_failures = 8;
    options.target_rel_halfwidth = 0.25;
    const YieldProbe probe = [threshold](double u, std::size_t) {
        return u > threshold ? SampleVerdict::kFail : SampleVerdict::kPass;
    };
    const YieldEstimate est = estimate_yield(options, 7, probe);
    EXPECT_TRUE(est.converged);
    EXPECT_LT(est.n_samples, options.max_samples);
    EXPECT_GE(0.1, est.lower);
    EXPECT_LE(0.1, est.upper);
    // Unit weights: the draws are worth exactly themselves.
    EXPECT_NEAR(est.ess, static_cast<double>(est.n_samples),
                1e-9 * static_cast<double>(est.n_samples));
}

TEST(YieldIS, ZeroFailuresGiveConservativeUpperBound) {
    YieldOptions options; // nominal proposal
    options.batch = 64;
    options.min_samples = 128;
    options.max_samples = 128;
    const YieldProbe probe = [](double, std::size_t) {
        return SampleVerdict::kPass;
    };
    const YieldEstimate est = estimate_yield(options, 13, probe);
    EXPECT_FALSE(est.converged); // never saw min_failures
    EXPECT_EQ(est.n_fail, 0u);
    EXPECT_EQ(est.p_fail, 0.0);
    EXPECT_EQ(est.sigma_level, std::numeric_limits<double>::infinity());
    // 128 clean samples do NOT prove p = 0: the upper bound stays off
    // zero, but should be small.
    EXPECT_GT(est.upper, 0.0);
    EXPECT_LT(est.upper, 0.06);
}

TEST(YieldIS, CensoringWidensConservativeBounds) {
    YieldOptions options;
    options.proposal = GaussianMixture::shifted(3.0);
    options.batch = 64;
    options.min_samples = 256;
    options.max_samples = 256;
    options.min_failures = 4;
    const YieldProbe probe = [](double u, std::size_t index) {
        if (index % 8 == 0)
            return SampleVerdict::kCensored;
        return u > 3.0 ? SampleVerdict::kFail : SampleVerdict::kPass;
    };
    const YieldEstimate est = estimate_yield(options, 29, probe);
    EXPECT_EQ(est.n_censored, est.n_samples / 8);
    EXPECT_GT(est.n_fail, 0u);
    // Worst-case imputation brackets the as-evaluated interval.
    EXPECT_LE(est.lower_censored, est.lower);
    EXPECT_GE(est.upper_censored, est.upper);
    EXPECT_GT(est.upper_censored, est.upper); // censoring must cost width
    EXPECT_GE(est.p_fail, est.lower);
    EXPECT_LE(est.p_fail, est.upper);
}

TEST(YieldIS, AllCensoredIsVacuousNotFatal) {
    YieldOptions options;
    options.batch = 16;
    options.min_samples = 16;
    options.max_samples = 16;
    const YieldProbe probe = [](double, std::size_t) {
        return SampleVerdict::kCensored;
    };
    const YieldEstimate est = estimate_yield(options, 1, probe);
    EXPECT_EQ(est.n_censored, est.n_samples);
    EXPECT_TRUE(std::isnan(est.p_fail));
    EXPECT_EQ(est.lower_censored, 0.0);
    EXPECT_EQ(est.upper_censored, 1.0);
    EXPECT_FALSE(est.converged);
}

TEST(YieldIS, CellYieldSmokeDeterministic) {
    // End-to-end through the lockstep engine on the real 6T cell: hold
    // static power beyond its own +2 sigma log-linear projection. Small
    // budget — this is a wiring test, the estimator math is pinned above.
    sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    VariationSpec vspec;
    vspec.table_spec.points = 121;
    const sram::MetricOptions opts;

    const TfetVariationSampler sampler(vspec);
    const auto metric = [opts](sram::SramCell& cell) {
        return sram::worst_hold_static_power(cell, opts);
    };
    const auto eval_at = [&](double u) {
        sram::CellConfig c = cfg;
        c.models = sampler.sample_at(u).models;
        sram::SramCell cell = sram::build_cell(c);
        return metric(cell);
    };
    const double p0 = eval_at(0.0);
    const double slope = (std::log(eval_at(1.0)) - std::log(eval_at(-1.0))) / 2.0;
    ASSERT_TRUE(p0 > 0.0 && std::isfinite(slope) && slope != 0.0);

    CellYieldProblem problem;
    problem.config = cfg;
    problem.variation = vspec;
    problem.metric = metric;
    problem.fails = [p0, slope](double v) {
        return (std::log(v) - std::log(p0)) / slope > 2.0;
    };
    // In t-space the slope's sign cancels (t(u) ~ u under the log-linear
    // model), so the failure region is u > 2 for either leakage polarity.
    YieldOptions options;
    options.proposal = GaussianMixture::shifted(2.0);
    options.batch = 16;
    options.min_samples = 16;
    options.max_samples = 48;
    options.min_failures = 2;
    options.target_rel_halfwidth = 0.5;

    BatchStats stats;
    const YieldEstimate a = estimate_cell_yield(
        spice::ambient_context(), problem, options, 99, /*threads=*/1,
        McPolicy{}, &stats);
    EXPECT_GE(a.n_samples, options.min_samples);
    EXPECT_EQ(a.n_censored, 0u);
    EXPECT_GT(a.n_fail, 0u) << "the 2-sigma surface should be reachable";
    EXPECT_GT(stats.model_retargets, 0u);
    EXPECT_GE(a.upper, a.p_fail);
    EXPECT_LE(a.lower, a.p_fail);

    const YieldEstimate b = estimate_cell_yield(
        spice::ambient_context(), problem, options, 99, /*threads=*/1);
    EXPECT_EQ(a.p_fail, b.p_fail);
    EXPECT_EQ(a.n_samples, b.n_samples);
    EXPECT_EQ(a.n_fail, b.n_fail);
    EXPECT_EQ(a.lower, b.lower);
    EXPECT_EQ(a.upper, b.upper);
}

} // namespace
} // namespace tfetsram::mc
