// Golden-value regression pins. Every number here was measured on the
// calibrated reproduction and cross-checked against the paper's reported
// shape (see EXPERIMENTS.md); the generous tolerances catch silent
// calibration drift — a changed default, a broken table, a solver
// regression — without over-constraining legitimate numeric noise.

#include <gtest/gtest.h>

#include <cmath>

#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "sram/snm.hpp"

namespace tfetsram::sram {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

const MetricOptions kOpts{};

TEST(Golden, ProposedCellAtNominal) {
    SramCell cell = build_cell(proposed_design(0.8, models()).config);

    const double wl = critical_wordline_pulse(cell, Assist::kNone, kOpts);
    EXPECT_NEAR(wl, 82e-12, 25e-12); // measured 81.6 ps

    const DrnmResult d =
        dynamic_read_noise_margin(cell, Assist::kRaGndLowering, kOpts);
    ASSERT_TRUE(d.valid);
    EXPECT_NEAR(d.drnm, 0.96, 0.15); // measured 959 mV

    const double p = worst_hold_static_power(cell, kOpts);
    EXPECT_NEAR(std::log10(p), std::log10(1.66e-17), 0.4);

    const double td_w = write_delay(cell, Assist::kNone, kOpts);
    EXPECT_NEAR(td_w, 85e-12, 30e-12);
}

TEST(Golden, StaticPowerLandscapeAtNominal) {
    // The three headline ratios of the paper, pinned.
    const device::ModelSet& m = models();
    SramCell prop = build_cell(proposed_design(0.8, m).config);
    SramCell cmos = build_cell(cmos_design(0.8, m).config);
    const double p_prop = worst_hold_static_power(prop, kOpts);
    const double p_cmos = worst_hold_static_power(cmos, kOpts);
    EXPECT_NEAR(std::log10(p_cmos / p_prop), 5.96, 0.5);

    CellConfig outward = proposed_design(0.8, m).config;
    outward.access = AccessDevice::kOutwardN;
    outward.beta = 1.0;
    SramCell out = build_cell(outward);
    const double p_out = worst_hold_static_power(out, kOpts);
    EXPECT_NEAR(std::log10(p_out / p_prop), 9.6, 0.6);
}

TEST(Golden, UnassistedBetaSweepShape) {
    // The write-failure boundary and growth rate of Fig. 4(b).
    const struct {
        double beta;
        double wlcrit_ps;
    } pins[] = {{0.4, 41.3}, {0.6, 81.6}, {0.8, 182.6}, {1.0, 680.6}};
    for (const auto& pin : pins) {
        CellConfig cfg = proposed_design(0.8, models()).config;
        cfg.beta = pin.beta;
        SramCell cell = build_cell(cfg);
        const double wl = critical_wordline_pulse(cell, Assist::kNone, kOpts);
        EXPECT_NEAR(wl, pin.wlcrit_ps * 1e-12, pin.wlcrit_ps * 1e-12 * 0.3)
            << "beta=" << pin.beta;
    }
}

TEST(Golden, DeviceAnchors) {
    const auto& n = models().ntfet;
    EXPECT_NEAR(n->iv(1.0, 1.0).ids, 1.0e-4, 0.1e-4);
    EXPECT_NEAR(std::log10(n->iv(0.0, 1.0).ids), -17.0, 0.2);
    EXPECT_NEAR(std::log10(-n->iv(0.0, -0.8).ids), -7.0, 0.3);
    const auto& mos = models().nmos;
    EXPECT_NEAR(std::log10(mos->iv(0.0, 0.8).ids), std::log10(7e-12), 0.3);
}

TEST(Golden, HoldSnmAndDrv) {
    const CellConfig cfg = proposed_design(0.8, models()).config;
    const SnmResult snm = static_noise_margin(cfg, SnmMode::kHold);
    ASSERT_TRUE(snm.valid);
    EXPECT_NEAR(snm.snm, 0.43, 0.08); // measured 428 mV
    const double drv = data_retention_voltage(cfg);
    EXPECT_NEAR(drv, 0.087, 0.04); // measured 87 mV
}

} // namespace
} // namespace tfetsram::sram
