// Differential/property harness for the sparse MNA kernel: the sparse
// path (la::SparseMatrix + la::SparseLu, spice sparse assembly) is held
// against the dense reference on the same inputs.
//
//  * Random well-conditioned systems: sparse and dense solutions agree to
//    tight tolerance across sizes and sparsity levels.
//  * Real MNA systems (a 6T cell, small arrays): the sparse assembly is
//    entry-for-entry *exactly* equal to the dense one — both backends run
//    the identical stamping code in identical order, so every matrix
//    entry accumulates the same addends in the same sequence.
//  * Full-simulation agreement: an SRAM array initialized and operated
//    under each backend produces matching states and read differentials.
//  * Failure parity: singular systems fail identically — both kernels
//    report singular, neither crashes, and the circuit-level solve
//    surfaces the same non-convergence instead of dying.
//  * Counter contracts: exactly one symbolic analysis per circuit
//    topology, one refactorization per Newton iteration, and the nnz
//    gauges report only when sparse work actually happened.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "array/array.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/sparse_lu.hpp"
#include "la/sparse_matrix.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/mna.hpp"
#include "spice/solver_select.hpp"
#include "spice/stats.hpp"
#include "sram/designs.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace tfetsram {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

array::ArrayConfig proposed_array(std::size_t rows, std::size_t cols) {
    array::ArrayConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.cell = sram::proposed_design(0.8, models()).config;
    cfg.read_assist = sram::Assist::kRaGndLowering;
    return cfg;
}

std::vector<std::vector<bool>> checker(std::size_t rows, std::size_t cols) {
    std::vector<std::vector<bool>> d(rows, std::vector<bool>(cols));
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            d[r][c] = (r + c) % 2 == 0;
    return d;
}

spice::SolverStats metered_since(const spice::SolverStats& before) {
    return spice::solver_stats() - before;
}

/// Random square system with ~`density` filled off-diagonals and a
/// dominant diagonal (well-conditioned by construction).
la::Matrix random_system(std::size_t n, double density, Rng& rng) {
    la::Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            if (r == c || rng.uniform(0.0, 1.0) < density)
                a(r, c) = rng.uniform(-1.0, 1.0);
        a(r, r) += 4.0;
    }
    return a;
}

// ------------------------------------------------- random-system parity

class SparseDenseRandom
    : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(SparseDenseRandom, SolutionsAgree) {
    const auto [n_int, density] = GetParam();
    const std::size_t n = static_cast<std::size_t>(n_int);
    Rng rng(static_cast<std::uint64_t>(n) * 1315423911u + 7);
    const la::Matrix a = random_system(n, density, rng);
    la::Vector b(n);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = rng.uniform(-1.0, 1.0);

    la::LuFactorization dense;
    ASSERT_TRUE(dense.factor_in_place(a));
    la::Vector x_dense(n);
    dense.solve_into(b, x_dense);

    const la::SparseMatrix sa = la::SparseMatrix::from_dense(a);
    la::SparseLu slu;
    slu.analyze(sa);
    ASSERT_TRUE(slu.refactor(sa));
    la::Vector x_sparse(n);
    slu.solve_into(b, x_sparse);

    // Both solutions satisfy the same well-conditioned system; they agree
    // to far better than the conditioning bound.
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x_sparse[i], x_dense[i],
                    1e-10 * (1.0 + std::fabs(x_dense[i])))
            << "component " << i << " of n=" << n;

    // And the sparse solution genuinely solves the system.
    const la::Vector res = la::subtract(sa.multiply(x_sparse), b);
    EXPECT_LT(la::norm_inf(res), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, SparseDenseRandom,
    ::testing::Values(std::pair<int, double>{1, 1.0},
                      std::pair<int, double>{2, 1.0},
                      std::pair<int, double>{5, 0.6},
                      std::pair<int, double>{13, 0.3},
                      std::pair<int, double>{40, 0.15},
                      std::pair<int, double>{97, 0.08},
                      std::pair<int, double>{160, 0.05}));

TEST(SparseDenseRandom, RepeatedRefactorsMatchAcrossValueChanges) {
    // One symbolic analysis, many numeric refactors with changing values —
    // the Newton-loop usage pattern. Every refactor must agree with a
    // fresh dense factorization of the same values.
    const std::size_t n = 30;
    Rng rng(20260806);
    const la::Matrix a0 = random_system(n, 0.25, rng);
    la::SparseMatrix sa = la::SparseMatrix::from_dense(a0);
    la::SparseLu slu;
    slu.analyze(sa);

    for (int pass = 0; pass < 5; ++pass) {
        // Perturb every stored value without touching the pattern.
        la::Matrix a = sa.to_dense();
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                if (a(r, c) != 0.0)
                    a(r, c) += rng.uniform(-0.1, 0.1);
        sa.set_zero();
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                if (a(r, c) != 0.0)
                    sa.add(r, c, a(r, c));

        la::Vector b(n);
        for (std::size_t i = 0; i < n; ++i)
            b[i] = rng.uniform(-1.0, 1.0);

        la::LuFactorization dense;
        ASSERT_TRUE(dense.factor_in_place(a));
        la::Vector x_dense(n);
        dense.solve_into(b, x_dense);
        ASSERT_TRUE(slu.refactor(sa));
        la::Vector x_sparse(n);
        slu.solve_into(b, x_sparse);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x_sparse[i], x_dense[i], 1e-9)
                << "pass " << pass << " component " << i;
    }
}

TEST(SparseDenseRandom, StaticPivotPathAgreesWithAlwaysPivotPath) {
    // The static-pivot fast path must be numerically interchangeable with
    // a factorization that re-runs the pivot search every time. Drift the
    // values the way Newton does and hold the two modes against each
    // other on every pass.
    const std::size_t n = 40;
    Rng rng(20260808);
    const la::Matrix a0 = random_system(n, 0.15, rng);
    la::SparseMatrix sa = la::SparseMatrix::from_dense(a0);

    la::SparseLu fast;
    fast.analyze(sa);
    la::SparseLu reference;
    reference.set_static_pivoting(false);
    reference.analyze(sa);

    for (int pass = 0; pass < 6; ++pass) {
        if (pass > 0) {
            la::Matrix a = sa.to_dense();
            sa.set_zero();
            for (std::size_t r = 0; r < n; ++r)
                for (std::size_t c = 0; c < n; ++c)
                    if (a(r, c) != 0.0)
                        sa.add(r, c, a(r, c) + rng.uniform(-0.1, 0.1));
        }
        ASSERT_TRUE(fast.refactor(sa)) << "pass " << pass;
        ASSERT_TRUE(reference.refactor(sa)) << "pass " << pass;
        EXPECT_FALSE(reference.last_refactor().static_hit);
        if (pass > 0)
            EXPECT_TRUE(fast.last_refactor().static_hit)
                << "well-conditioned drift should reuse the pivot "
                   "sequence on pass "
                << pass;

        la::Vector b(n);
        for (std::size_t i = 0; i < n; ++i)
            b[i] = rng.uniform(-1.0, 1.0);
        la::Vector x_fast(n), x_ref(n);
        fast.solve_into(b, x_fast);
        reference.solve_into(b, x_ref);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x_fast[i], x_ref[i], 1e-11)
                << "pass " << pass << " component " << i;
    }
}

// ------------------------------------------------- failure parity

TEST(SparseDenseFailure, SingularSystemsFailIdentically) {
    // Row 2 = 2 * row 0: rank deficient. Both kernels must report
    // singular via their return value — no throw, no crash, no NaN-filled
    // "solution".
    la::Matrix a(3, 3);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(0, 2) = 3.0;
    a(1, 0) = 4.0;
    a(1, 1) = 5.0;
    a(1, 2) = 6.0;
    a(2, 0) = 2.0;
    a(2, 1) = 4.0;
    a(2, 2) = 6.0;

    la::LuFactorization dense;
    const bool dense_ok = dense.factor_in_place(a);

    const la::SparseMatrix sa = la::SparseMatrix::from_dense(a);
    la::SparseLu slu;
    slu.analyze(sa);
    const bool sparse_ok = slu.refactor(sa);

    EXPECT_FALSE(dense_ok);
    EXPECT_FALSE(sparse_ok);
}

TEST(SparseDenseFailure, ZeroMatrixFailsIdentically) {
    la::Matrix a(4, 4);
    la::LuFactorization dense;
    EXPECT_FALSE(dense.factor_in_place(a));

    la::SparseMatrix sa(4, 4);
    for (std::size_t i = 0; i < 4; ++i)
        sa.reserve_entry(i, i);
    sa.finalize_pattern(); // all-zero values
    la::SparseLu slu;
    slu.analyze(sa);
    EXPECT_FALSE(slu.refactor(sa));
}

TEST(SparseDenseFailure, NearSingularThresholdMatchesDenseKernel) {
    // A pivot at the shared 1e-300 tolerance boundary: both kernels use
    // the same threshold, so they flip from ok to singular together.
    for (const double tiny : {1e-290, 1e-310}) {
        la::Matrix a = la::Matrix::identity(3);
        a(1, 1) = tiny;
        la::LuFactorization dense;
        const bool dense_ok = dense.factor_in_place(a);
        const la::SparseMatrix sa = la::SparseMatrix::from_dense(a);
        la::SparseLu slu;
        slu.analyze(sa);
        const bool sparse_ok = slu.refactor(sa);
        EXPECT_EQ(dense_ok, sparse_ok) << "pivot magnitude " << tiny;
        EXPECT_EQ(dense_ok, tiny > 1e-300);
    }
}

TEST(SparseDenseFailure, SingularCircuitSolveFailsGracefullyBothPaths) {
    // A floating node (no DC path to ground) makes the MNA matrix
    // singular in DC. Both backends must walk the same fallback-strategy
    // chain and return a structured non-convergence, not crash.
    for (const spice::SolverMode mode :
         {spice::SolverMode::kDense, spice::SolverMode::kSparse}) {
        spice::ScopedSolverMode scoped(mode);
        spice::Circuit c;
        const spice::NodeId a = c.add_node("a");
        const spice::NodeId b = c.add_node("b");
        c.add_vsource("V1", a, spice::kGround, spice::Waveform::dc(1.0));
        c.add_capacitor("C1", a, b, 1e-15); // b floats in DC
        spice::SolverOptions opts;
        opts.gmin = 0.0; // no convergence shunt to hide the singularity
        const spice::DcResult r = solve_dc(c, opts);
        EXPECT_FALSE(r.converged) << "mode " << static_cast<int>(mode);
        EXPECT_EQ(r.strategy, "failed");
        ASSERT_TRUE(r.error.has_value());
    }
}

// ------------------------------------------------- MNA assembly parity

TEST(SparseAssembly, CellSystemMatchesDenseExactly) {
    // Dense and sparse assembly run the same stamping code in the same
    // order, so corresponding entries see the same addends in the same
    // sequence: comparison is exact, not approximate.
    spice::ScopedSolverMode scoped(spice::SolverMode::kDense);
    sram::SramCell cell = sram::build_cell(proposed_array(1, 1).cell);
    spice::Circuit& c = cell.circuit;
    c.prepare();
    const std::size_t n = c.num_unknowns();

    Rng rng(42);
    la::Vector x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = rng.uniform(0.0, 0.8);

    spice::AnalysisState as;
    as.mode = spice::AnalysisMode::kDc;

    la::Matrix jac_d;
    la::Vector rhs_d;
    spice::assemble(c, as, x, 1e-12, jac_d, rhs_d);

    la::SparseMatrix jac_s;
    spice::build_pattern(c, jac_s);
    la::Vector rhs_s;
    spice::assemble(c, as, x, 1e-12, jac_s, rhs_s);

    ASSERT_EQ(rhs_s.size(), rhs_d.size());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(rhs_s[i], rhs_d[i]) << "rhs " << i;
    const la::Matrix back = jac_s.to_dense();
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t col = 0; col < n; ++col)
            EXPECT_EQ(back(r, col), jac_d(r, col)) << r << "," << col;
}

TEST(SparseAssembly, ArraySystemMatchesDenseExactly) {
    spice::ScopedSolverMode scoped(spice::SolverMode::kDense);
    array::SramArray arr(proposed_array(4, 2));
    spice::Circuit& c = arr.circuit();
    c.prepare();
    const std::size_t n = c.num_unknowns();

    Rng rng(7);
    la::Vector x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = rng.uniform(0.0, 0.8);

    // Transient state so the capacitive companion models stamp too.
    spice::AnalysisState as;
    as.mode = spice::AnalysisMode::kTransient;
    as.dt = 1e-12;
    as.first_transient_step = true;

    la::Matrix jac_d;
    la::Vector rhs_d;
    spice::assemble(c, as, x, 1e-12, jac_d, rhs_d);

    la::SparseMatrix jac_s;
    spice::build_pattern(c, jac_s);
    la::Vector rhs_s;
    spice::assemble(c, as, x, 1e-12, jac_s, rhs_s);

    EXPECT_GT(jac_s.nnz(), 0u);
    EXPECT_LT(jac_s.nnz(), n * n / 4) << "array system should be sparse";
    const la::Matrix back = jac_s.to_dense();
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t col = 0; col < n; ++col)
            EXPECT_EQ(back(r, col), jac_d(r, col)) << r << "," << col;
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(rhs_s[i], rhs_d[i]) << "rhs " << i;
}

TEST(SparseAssembly, AmdFillNoWorseThanGreedyOnRealMnaPatterns) {
    // The AMD ordering replaced the O(n^2) greedy minimum-degree scan for
    // speed; on the patterns this simulator actually factors it must not
    // give that speed back as extra fill (a few percent of slack covers
    // the approximation).
    spice::ScopedSolverMode scoped(spice::SolverMode::kDense);
    const auto fill_of = [](spice::Circuit& c, bool use_amd) {
        c.prepare();
        la::SparseMatrix jac;
        spice::build_pattern(c, jac);
        Rng rng(42);
        la::Vector x(c.num_unknowns());
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = rng.uniform(0.0, 0.8);
        spice::AnalysisState as;
        as.mode = spice::AnalysisMode::kTransient;
        as.dt = 1e-12;
        as.first_transient_step = true;
        la::Vector rhs;
        spice::assemble(c, as, x, 1e-12, jac, rhs);
        la::SparseLu lu;
        if (use_amd)
            lu.analyze(jac); // default ordering is AMD
        else
            lu.analyze(jac, la::minimum_degree_order(jac));
        EXPECT_TRUE(lu.refactor(jac));
        return lu.lu_nnz();
    };

    sram::SramCell cell = sram::build_cell(proposed_array(1, 1).cell);
    EXPECT_LE(fill_of(cell.circuit, true),
              fill_of(cell.circuit, false) * 105 / 100)
        << "cell MNA pattern";

    array::SramArray arr(proposed_array(4, 4));
    EXPECT_LE(fill_of(arr.circuit(), true),
              fill_of(arr.circuit(), false) * 105 / 100)
        << "array MNA pattern";
}

// ------------------------------------------------- full-simulation parity

TEST(SparseDenseSimulation, ArrayOperationsAgreeAcrossBackends) {
    // The end-to-end property: a full initialize/write/read sequence
    // produces the same stored data and closely matching analog results
    // whichever kernel the Newton loop runs on.
    const std::size_t rows = 3, cols = 2;
    double diff_dense = 0.0, diff_sparse = 0.0;
    double sep_dense = 0.0, sep_sparse = 0.0;

    for (const spice::SolverMode mode :
         {spice::SolverMode::kDense, spice::SolverMode::kSparse}) {
        spice::ScopedSolverMode scoped(mode);
        array::SramArray arr(proposed_array(rows, cols));
        ASSERT_TRUE(arr.initialize(checker(rows, cols)));

        const array::OpResult w = arr.write(1, 1, true);
        ASSERT_TRUE(w.ok) << w.message;
        const array::ReadResult rd = arr.read(1, 1);
        ASSERT_TRUE(rd.ok) << rd.message;
        EXPECT_TRUE(rd.value);

        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < cols; ++c) {
                const bool expect =
                    (r == 1 && c == 1) ? true : (r + c) % 2 == 0;
                EXPECT_EQ(arr.stored(r, c), expect)
                    << "mode " << static_cast<int>(mode) << " cell " << r
                    << "," << c;
            }

        const array::SolverInfo info = arr.solver_info();
        EXPECT_EQ(info.kind, mode == spice::SolverMode::kSparse
                                 ? spice::SolverKind::kSparse
                                 : spice::SolverKind::kDense);
        if (mode == spice::SolverMode::kSparse) {
            diff_sparse = rd.differential;
            sep_sparse = arr.separation(1, 1);
            EXPECT_GT(info.pattern_nnz, 0u);
            EXPECT_GE(info.lu_nnz, info.pattern_nnz / 2);
        } else {
            diff_dense = rd.differential;
            sep_dense = arr.separation(1, 1);
        }
    }

    // Same physics through both kernels: transient trajectories diverge
    // only by linear-solver round-off, far below any margin of interest.
    EXPECT_NEAR(diff_sparse, diff_dense, 1e-6);
    EXPECT_NEAR(sep_sparse, sep_dense, 1e-6);
}

// ------------------------------------------------- counter contracts

TEST(SparseCounters, OneSymbolicAnalysisPerCircuitTopology) {
    spice::ScopedSolverMode scoped(spice::SolverMode::kSparse);
    const spice::SolverStats before = spice::solver_stats();
    constexpr int kCircuits = 3;
    for (int i = 0; i < kCircuits; ++i) {
        spice::Circuit c;
        const spice::NodeId top = c.add_node("top");
        const spice::NodeId mid = c.add_node("mid");
        c.add_vsource("V1", top, spice::kGround, spice::Waveform::dc(1.0));
        c.add_resistor("R1", top, mid, 1e3);
        c.add_resistor("R2", mid, spice::kGround, 3e3);
        // Three solves of the same circuit reuse the one analysis.
        for (int s = 0; s < 3; ++s)
            ASSERT_TRUE(solve_dc(c, {}).converged);
    }
    const spice::SolverStats d = metered_since(before);
    EXPECT_EQ(d.sparse_symbolic_analyses, static_cast<std::uint64_t>(kCircuits));
}

TEST(SparseCounters, OneRefactorizationPerNewtonIteration) {
    spice::ScopedSolverMode scoped(spice::SolverMode::kSparse);
    sram::SramCell cell = sram::build_cell(proposed_array(1, 1).cell);
    const spice::SolverStats before = spice::solver_stats();
    const spice::DcResult r = solve_dc(cell.circuit, {});
    const spice::SolverStats d = metered_since(before);
    ASSERT_TRUE(r.converged);
    EXPECT_GT(d.nr_iterations, 0u);
    // The repo-wide factorization contract holds on the sparse path, and
    // every factorization was a sparse refactor of the frozen pattern.
    EXPECT_EQ(d.lu_factorizations, d.nr_iterations);
    EXPECT_EQ(d.sparse_refactorizations, d.nr_iterations);
    EXPECT_EQ(d.assemblies, d.nr_iterations + d.line_search_backtracks);
    EXPECT_EQ(d.sparse_symbolic_analyses, 1u);
    // Gauges report the circuit's system size.
    EXPECT_GT(d.sparse_pattern_nnz, 0u);
    EXPECT_GE(d.sparse_lu_nnz, d.sparse_pattern_nnz / 2);
}

TEST(SparseCounters, DenseOnlyWindowReportsNoSparseWork) {
    spice::ScopedSolverMode scoped(spice::SolverMode::kDense);
    sram::SramCell cell = sram::build_cell(proposed_array(1, 1).cell);
    const spice::SolverStats before = spice::solver_stats();
    ASSERT_TRUE(solve_dc(cell.circuit, {}).converged);
    const spice::SolverStats d = metered_since(before);
    EXPECT_GT(d.lu_factorizations, 0u);
    EXPECT_EQ(d.sparse_refactorizations, 0u);
    EXPECT_EQ(d.sparse_symbolic_analyses, 0u);
    // Gauges pass through only when the window did sparse work.
    EXPECT_EQ(d.sparse_pattern_nnz, 0u);
    EXPECT_EQ(d.sparse_lu_nnz, 0u);
}

TEST(SparseCounters, AutoModeRoutesBySystemSize) {
    // No override, no env expected in the test environment: kAuto routes a
    // single cell (~10 unknowns) dense and an 8x4 array (> threshold)
    // sparse. Guard against an externally set TFETSRAM_SOLVER.
    if (env::raw("TFETSRAM_SOLVER") != nullptr)
        GTEST_SKIP() << "TFETSRAM_SOLVER set; auto-routing not observable";
    spice::ScopedSolverMode scoped(spice::SolverMode::kAuto);

    sram::SramCell cell = sram::build_cell(proposed_array(1, 1).cell);
    ASSERT_LT(cell.circuit.num_unknowns(), spice::kSparseAutoThreshold);
    ASSERT_TRUE(solve_dc(cell.circuit, {}).converged);
    ASSERT_TRUE(cell.circuit.workspace().kind.has_value());
    EXPECT_EQ(*cell.circuit.workspace().kind, spice::SolverKind::kDense);

    array::SramArray arr(proposed_array(8, 4));
    ASSERT_GE(arr.circuit().num_unknowns(), spice::kSparseAutoThreshold);
    ASSERT_TRUE(arr.initialize(checker(8, 4)));
    ASSERT_TRUE(arr.circuit().workspace().kind.has_value());
    EXPECT_EQ(*arr.circuit().workspace().kind, spice::SolverKind::kSparse);
}

TEST(SparseCounters, FastPathCountersTrackArrayInitialization) {
    // Initializations refactor the same MNA pattern once per Newton
    // iterate: the very first factorization runs the full pivot search,
    // and the drifting-value repeats — including the re-initialization to
    // the complementary data pattern — ride the static fast path. The
    // batched device sweep serves every one of those assemblies.
    spice::ScopedSolverMode scoped(spice::SolverMode::kSparse);
    const spice::SolverStats before = spice::solver_stats();
    array::SramArray arr(proposed_array(4, 4));
    ASSERT_TRUE(arr.initialize(checker(4, 4)));
    std::vector<std::vector<bool>> flipped = checker(4, 4);
    for (auto& row : flipped)
        row.flip();
    ASSERT_TRUE(arr.initialize(flipped));
    const spice::SolverStats d = metered_since(before);
    EXPECT_GT(d.sparse_refactorizations, 1u);
    EXPECT_GT(d.sparse_static_pivot_hits, 0u);
    // At least the first refactor of each analyzed pattern ran the full
    // search, so hits never cover every refactor.
    EXPECT_LT(d.sparse_static_pivot_hits, d.sparse_refactorizations);
    EXPECT_GT(d.batched_evals, 0u);
    // Every assembly swept all of the array's transistors exactly once.
    EXPECT_EQ(d.batched_evals % d.assemblies, 0u);
    EXPECT_EQ(d.sparse_symbolic_analyses, 1u);
}

TEST(SparseCounters, DenseOnlyWindowReportsNoFastPathWork) {
    spice::ScopedSolverMode scoped(spice::SolverMode::kDense);
    sram::SramCell cell = sram::build_cell(proposed_array(1, 1).cell);
    const spice::SolverStats before = spice::solver_stats();
    ASSERT_TRUE(solve_dc(cell.circuit, {}).converged);
    const spice::SolverStats d = metered_since(before);
    EXPECT_EQ(d.sparse_static_pivot_hits, 0u);
    EXPECT_EQ(d.sparse_pivot_fallbacks, 0u);
    EXPECT_EQ(d.sparse_ordering_us, 0u);
}

TEST(SparseCounters, TopologyChangeTriggersFreshAnalysis) {
    spice::ScopedSolverMode scoped(spice::SolverMode::kSparse);
    spice::Circuit c;
    const spice::NodeId top = c.add_node("top");
    c.add_vsource("V1", top, spice::kGround, spice::Waveform::dc(1.0));
    c.add_resistor("R1", top, spice::kGround, 1e3);
    ASSERT_TRUE(solve_dc(c, {}).converged);

    // Growing the circuit invalidates the frozen pattern; the next solve
    // must re-run the symbolic analysis instead of stamping outside it.
    const spice::NodeId mid = c.add_node("mid");
    c.add_resistor("R2", top, mid, 1e3);
    c.add_resistor("R3", mid, spice::kGround, 1e3);
    const spice::SolverStats before = spice::solver_stats();
    ASSERT_TRUE(solve_dc(c, {}).converged);
    const spice::SolverStats d = metered_since(before);
    EXPECT_EQ(d.sparse_symbolic_analyses, 1u);
}

} // namespace
} // namespace tfetsram
