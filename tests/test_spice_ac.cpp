// AC analysis tests: RC corner against the closed form, flat resistive
// response, capacitance-matrix extraction through a transistor, and a
// TFET common-source stage's low-frequency gain.

#include <gtest/gtest.h>

#include <cmath>

#include "device/models.hpp"
#include "spice/ac.hpp"
#include "spice/solution.hpp"

namespace tfetsram::spice {
namespace {

TEST(Ac, RcLowPassCorner) {
    // R = 1k, C = 1p -> f_3dB = 1/(2 pi R C) ~ 159.2 MHz.
    Circuit ckt;
    const NodeId in = ckt.add_node("in");
    const NodeId out = ckt.add_node("out");
    auto& vin = ckt.add_vsource("V", in, kGround, Waveform::dc(0.0));
    ckt.add_resistor("R", in, out, 1e3);
    ckt.add_capacitor("C", out, kGround, 1e-12);
    const AcResult res =
        solve_ac(ckt, {}, {&vin, 1.0}, 1e6, 1e10, 20);
    ASSERT_TRUE(res.ok) << res.message;
    const double f3 = res.corner_frequency(out);
    EXPECT_NEAR(f3, 1.0 / (2.0 * M_PI * 1e3 * 1e-12), f3 * 0.05);
    // Low-frequency response is unity; 0 dB.
    EXPECT_NEAR(res.magnitude_db(out, 0), 0.0, 0.1);
    // A decade above the corner the slope is -20 dB/dec.
    const auto& f = res.frequencies();
    std::size_t hi = f.size() - 1;
    EXPECT_LT(res.magnitude_db(out, hi), -30.0);
}

TEST(Ac, ResistiveDividerFlat) {
    Circuit ckt;
    const NodeId in = ckt.add_node("in");
    const NodeId mid = ckt.add_node("mid");
    auto& vin = ckt.add_vsource("V", in, kGround, Waveform::dc(0.0));
    ckt.add_resistor("R1", in, mid, 1e3);
    ckt.add_resistor("R2", mid, kGround, 1e3);
    const AcResult res = solve_ac(ckt, {}, {&vin, 1.0}, 1e3, 1e9, 5);
    ASSERT_TRUE(res.ok);
    for (std::size_t i = 0; i < res.frequencies().size(); ++i)
        EXPECT_NEAR(res.magnitude_db(mid, i), 20.0 * std::log10(0.5), 0.05)
            << "i=" << i;
    EXPECT_TRUE(std::isnan(res.corner_frequency(mid)));
}

TEST(Ac, PhaseLagAtCorner) {
    Circuit ckt;
    const NodeId in = ckt.add_node("in");
    const NodeId out = ckt.add_node("out");
    auto& vin = ckt.add_vsource("V", in, kGround, Waveform::dc(0.0));
    ckt.add_resistor("R", in, out, 1e3);
    ckt.add_capacitor("C", out, kGround, 1e-12);
    const double fc = 1.0 / (2.0 * M_PI * 1e3 * 1e-12);
    const AcResult res = solve_ac(ckt, {}, {&vin, 1.0}, fc, fc * 1.01, 200);
    ASSERT_TRUE(res.ok);
    const std::complex<double> v = res.phasor(out, 0);
    EXPECT_NEAR(std::arg(v), -M_PI / 4.0, 0.02); // -45 degrees at the corner
}

TEST(Ac, TfetCommonSourceGain) {
    // Resistor-loaded common-source stage: |A_v| ~ gm * (R || 1/gds).
    Circuit ckt;
    const NodeId vdd = ckt.add_node("vdd");
    const NodeId in = ckt.add_node("in");
    const NodeId out = ckt.add_node("out");
    ckt.add_vsource("Vdd", vdd, kGround, Waveform::dc(0.8));
    auto& vin = ckt.add_vsource("Vin", in, kGround, Waveform::dc(0.45));
    const double r_load = 2e5;
    ckt.add_resistor("RL", vdd, out, r_load);
    const auto model = device::make_ntfet();
    ckt.add_transistor("M", model, out, in, kGround, 1.0);

    const AcResult res = solve_ac(ckt, {}, {&vin, 1.0}, 1e3, 1e6, 5);
    ASSERT_TRUE(res.ok) << res.message;
    const double av = std::abs(res.phasor(out, 0));
    EXPECT_GT(av, 1.0) << "the stage must amplify";

    // Inverting stage: the low-frequency phasor points along the negative
    // real axis (arg = +/- pi, branch cut permitting).
    EXPECT_NEAR(std::fabs(std::arg(res.phasor(out, 0))), M_PI, 0.5);
}

TEST(Ac, TransistorCapacitanceLoadsTheBitline) {
    // A bitline-like node loaded by an off transistor's drain capacitance:
    // corner moves when the device widens (C extraction sanity).
    auto corner_for_width = [](double width) {
        Circuit ckt;
        const NodeId in = ckt.add_node("in");
        const NodeId out = ckt.add_node("out");
        auto& vin = ckt.add_vsource("V", in, kGround, Waveform::dc(0.0));
        ckt.add_resistor("R", in, out, 1e6);
        // Gate grounded, drain at the node: Cgd loads it.
        ckt.add_transistor("M", device::make_ntfet(), out, kGround, kGround,
                           width);
        const AcResult res = solve_ac(ckt, {}, {&vin, 1.0}, 1e6, 1e12, 10);
        return res.ok ? res.corner_frequency(out) : -1.0;
    };
    const double f1 = corner_for_width(1.0);
    const double f4 = corner_for_width(4.0);
    ASSERT_GT(f1, 0.0);
    ASSERT_GT(f4, 0.0);
    EXPECT_NEAR(f1 / f4, 4.0, 0.5) << "4x the width, 4x the cap, 1/4 corner";
}

TEST(Ac, RejectsBadSweep) {
    Circuit ckt;
    const NodeId in = ckt.add_node("in");
    auto& vin = ckt.add_vsource("V", in, kGround, Waveform::dc(0.0));
    ckt.add_resistor("R", in, kGround, 1e3);
    EXPECT_THROW(solve_ac(ckt, {}, {&vin, 1.0}, 1e6, 1e3, 10),
                 contract_violation);
    EXPECT_THROW(solve_ac(ckt, {}, {nullptr, 1.0}, 1e3, 1e6, 10),
                 contract_violation);
}

} // namespace
} // namespace tfetsram::spice
