// Sign-off flow tests: the paper's proposed design must qualify against a
// realistic requirements table; impossible requirements must produce
// legible violations; the report must render every section.

#include <gtest/gtest.h>

#include "core/signoff.hpp"

namespace tfetsram::core {
namespace {

SignoffConditions quick_conditions() {
    SignoffConditions cond;
    cond.vdd_corners = {0.7, 0.9};
    cond.temperature_corners = {300.0};
    cond.mc_samples = 4;
    return cond;
}

SignoffRequirements loose_requirements() {
    SignoffRequirements req;
    req.max_wlcrit = 4e-9;
    req.max_write_delay = 4e-9;
    return req;
}

TEST(Signoff, ProposedDesignPasses) {
    const device::ModelSet models = device::make_model_set();
    const sram::DesignSpec design = sram::proposed_design(0.8, models);
    const SignoffReport rep =
        signoff(design, {}, loose_requirements(), quick_conditions());
    EXPECT_TRUE(rep.passed()) << rep.to_text();
    EXPECT_EQ(rep.corners.size(), 2u);
    EXPECT_EQ(rep.temperatures.size(), 1u);
    EXPECT_GT(rep.hold_snm, 0.1);
    EXPECT_GT(rep.mc_drnm.count, 0u);
}

TEST(Signoff, ImpossibleRequirementFailsLegibly) {
    const device::ModelSet models = device::make_model_set();
    const sram::DesignSpec design = sram::proposed_design(0.8, models);
    SignoffRequirements req = loose_requirements();
    req.max_static_power = 1e-30; // unobtainable
    SignoffConditions cond = quick_conditions();
    cond.mc_samples = 0;
    const SignoffReport rep = signoff(design, {}, req, cond);
    EXPECT_FALSE(rep.passed());
    ASSERT_FALSE(rep.failures.empty());
    EXPECT_NE(rep.failures.front().find("static power"), std::string::npos);
    EXPECT_NE(rep.to_text().find("FAIL"), std::string::npos);
}

TEST(Signoff, CmosBaselineFailsTfetLeakageTarget) {
    // The comparison the whole paper is about, as a sign-off verdict: the
    // CMOS cell cannot meet an attowatt-class leakage budget.
    const device::ModelSet models = device::make_model_set();
    const sram::DesignSpec design = sram::cmos_design(0.8, models);
    SignoffConditions cond = quick_conditions();
    cond.mc_samples = 0;
    const SignoffReport rep =
        signoff(design, {}, loose_requirements(), cond);
    EXPECT_FALSE(rep.passed());
    bool leakage_flagged = false;
    for (const std::string& f : rep.failures)
        if (f.find("static power") != std::string::npos)
            leakage_flagged = true;
    EXPECT_TRUE(leakage_flagged);
}

TEST(Signoff, ReportRendersSections) {
    const device::ModelSet models = device::make_model_set();
    const sram::DesignSpec design = sram::proposed_design(0.8, models);
    SignoffConditions cond = quick_conditions();
    cond.mc_samples = 0;
    const std::string text =
        signoff(design, {}, loose_requirements(), cond).to_text();
    EXPECT_NE(text.find("Sign-off:"), std::string::npos);
    EXPECT_NE(text.find("WLcrit"), std::string::npos);
    EXPECT_NE(text.find("retention voltage"), std::string::npos);
    EXPECT_NE(text.find("verdict"), std::string::npos);
}

} // namespace
} // namespace tfetsram::core
