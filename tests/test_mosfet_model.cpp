// EKV MOSFET tests: 32 nm LP anchors, the source/drain-swap symmetry that
// gives CMOS its bidirectional access transistors, subthreshold behaviour,
// and derivative consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "device/models.hpp"
#include "device/mosfet_model.hpp"

namespace tfetsram::device {
namespace {

const MosfetParams kNmos{};

TEST(MosfetModel, OnCurrentScale) {
    const MosfetModel m(kNmos);
    const double ion = m.iv(0.8, 0.8).ids;
    EXPECT_GT(ion, 1e-4);
    EXPECT_LT(ion, 1e-3);
}

TEST(MosfetModel, OffCurrentScale) {
    // ~1e-11 A/um: 6 orders above the TFET, per the paper's comparison.
    const MosfetModel m(kNmos);
    const double ioff = m.iv(0.0, 0.8).ids;
    EXPECT_GT(ioff, 1e-12);
    EXPECT_LT(ioff, 1e-10);
}

TEST(MosfetModel, SubthresholdSwingNear78mV) {
    const MosfetModel m(kNmos);
    const double i1 = m.iv(0.15, 0.8).ids;
    const double i2 = m.iv(0.25, 0.8).ids;
    const double swing_mv = 0.1 / std::log10(i2 / i1) * 1e3;
    EXPECT_NEAR(swing_mv, 78.0, 8.0);
}

TEST(MosfetModel, NeverBelowSixtyMv) {
    // Thermionic limit: MOSFET swing cannot beat 60 mV/dec; this is the
    // fundamental contrast with the TFET.
    const MosfetModel m(kNmos);
    for (double vgs = 0.05; vgs < 0.45; vgs += 0.05) {
        const double i1 = m.iv(vgs, 0.8).ids;
        const double i2 = m.iv(vgs + 0.05, 0.8).ids;
        const double swing_mv = 0.05 / std::log10(i2 / i1) * 1e3;
        EXPECT_GT(swing_mv, 59.9) << "vgs=" << vgs;
    }
}

TEST(MosfetModel, SourceDrainSwapIdentity) {
    // I(vgs, -vds) == -I(vgs + vds, vds): the device is the same with the
    // terminals exchanged.
    const MosfetModel m(kNmos);
    for (double vg : {0.3, 0.6, 0.9}) {
        for (double vd : {0.1, 0.4, 0.8}) {
            const double fwd = m.iv(vg + vd, vd).ids;
            const double rev = m.iv(vg, -vd).ids;
            EXPECT_NEAR(rev, -fwd, std::fabs(fwd) * 1e-9 + 1e-18);
        }
    }
}

TEST(MosfetModel, BidirectionalUnlikeTfet) {
    // Symmetric conduction magnitude at mirrored gate-overdrive bias: the
    // property TFETs lack.
    const MosfetModel m(kNmos);
    const double fwd = m.iv(0.8, 0.4).ids;
    const double rev = -m.iv(0.4, -0.4).ids; // swapped: vgs' = 0.8, vds' = 0.4
    EXPECT_NEAR(rev, fwd, fwd * 1e-9);
}

TEST(MosfetModel, ZeroVdsZeroCurrent) {
    const MosfetModel m(kNmos);
    EXPECT_NEAR(m.iv(0.8, 0.0).ids, 0.0, 1e-15);
}

TEST(MosfetModel, MonotoneInBothBiases) {
    const MosfetModel m(kNmos);
    double prev = -1.0;
    for (double vgs = 0.0; vgs <= 1.0; vgs += 0.1) {
        const double i = m.iv(vgs, 0.5).ids;
        EXPECT_GT(i, prev);
        prev = i;
    }
    prev = -1.0;
    for (double vds = 0.0; vds <= 1.0; vds += 0.1) {
        const double i = m.iv(0.8, vds).ids;
        EXPECT_GE(i, prev);
        prev = i;
    }
}

class MosfetDerivatives
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(MosfetDerivatives, MatchFiniteDifferences) {
    const MosfetModel m(kNmos);
    const auto [vgs, vds] = GetParam();
    const double h = 1e-6;
    const spice::IvSample s = m.iv(vgs, vds);
    const double gm_fd =
        (m.iv(vgs + h, vds).ids - m.iv(vgs - h, vds).ids) / (2 * h);
    const double gds_fd =
        (m.iv(vgs, vds + h).ids - m.iv(vgs, vds - h).ids) / (2 * h);
    EXPECT_NEAR(s.gm, gm_fd, 1e-9 + 1e-4 * std::fabs(gm_fd));
    EXPECT_NEAR(s.gds, gds_fd, 1e-9 + 1e-4 * std::fabs(gds_fd));
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetDerivatives,
    ::testing::Values(std::pair{0.0, 0.5}, std::pair{0.5, 0.5},
                      std::pair{0.8, 0.1}, std::pair{1.0, 1.0},
                      std::pair{0.6, -0.4}, std::pair{0.3, -0.8},
                      std::pair{0.9, 0.01}));

TEST(MosfetModel, CvSwapsUnderMirror) {
    const MosfetModel m(kNmos);
    const spice::CvSample fwd = m.cv(0.8 + 0.4, 0.4);
    const spice::CvSample rev = m.cv(0.8, -0.4);
    EXPECT_NEAR(rev.cgs, fwd.cgd, 1e-18);
    EXPECT_NEAR(rev.cgd, fwd.cgs, 1e-18);
}

TEST(PmosMirror, ConductsWithNegativeBias) {
    const auto p = make_pmos();
    const double ion = p->iv(-0.8, -0.8).ids;
    EXPECT_LT(ion, -5e-5); // conducts, source -> drain
    const double ioff = p->iv(0.0, -0.8).ids;
    EXPECT_GT(std::fabs(ioff), 1e-13);
    EXPECT_LT(std::fabs(ioff), 1e-10);
}

TEST(PmosMirror, WeakerThanNmos) {
    const auto n = make_nmos();
    const auto p = make_pmos();
    EXPECT_LT(std::fabs(p->iv(-0.8, -0.8).ids), n->iv(0.8, 0.8).ids);
}

TEST(MosfetModel, TfetLeakageSixOrdersBelow) {
    // The headline static-power claim traces to this ratio.
    const MosfetModel mos(kNmos);
    const TfetModel tfet{TfetParams{}};
    const double ratio = mos.iv(0.0, 0.8).ids / tfet.iv(0.0, 0.8).ids;
    EXPECT_GT(ratio, 1e5);
    EXPECT_LT(ratio, 1e8);
}

} // namespace
} // namespace tfetsram::device
