// Unit tests for stimulus waveforms: DC, PWL, pulse factories, scaling,
// breakpoint reporting.

#include <gtest/gtest.h>

#include "spice/waveform.hpp"

namespace tfetsram::spice {
namespace {

TEST(Waveform, DcIsConstant) {
    const Waveform w = Waveform::dc(0.8);
    EXPECT_DOUBLE_EQ(w.at(0.0), 0.8);
    EXPECT_DOUBLE_EQ(w.at(1e-9), 0.8);
    EXPECT_TRUE(w.is_dc());
    EXPECT_TRUE(w.breakpoints().empty());
}

TEST(Waveform, PwlInterpolatesAndClamps) {
    const Waveform w = Waveform::pwl({{1e-9, 0.0}, {2e-9, 1.0}});
    EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);      // before: first value holds
    EXPECT_DOUBLE_EQ(w.at(1.5e-9), 0.5);   // midpoint
    EXPECT_DOUBLE_EQ(w.at(3e-9), 1.0);     // after: last value holds
    EXPECT_FALSE(w.is_dc());
}

TEST(Waveform, PwlRejectsNonMonotonicTimes) {
    EXPECT_THROW(Waveform::pwl({{2e-9, 0.0}, {1e-9, 1.0}}), contract_violation);
}

TEST(Waveform, PulseShape) {
    const Waveform w =
        Waveform::pulse(/*base=*/0.0, /*active=*/1.0, /*t_start=*/1e-9,
                        /*t_rise=*/1e-10, /*t_width=*/5e-10, /*t_fall=*/1e-10);
    EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
    EXPECT_NEAR(w.at(1.1e-9), 1.0, 1e-9);               // after rise
    EXPECT_DOUBLE_EQ(w.at(1.35e-9), 1.0);               // mid-hold
    EXPECT_NEAR(w.at(1.05e-9), 0.5, 1e-9);              // mid-rise
    EXPECT_DOUBLE_EQ(w.at(2.0e-9), 0.0);                // back at base
    EXPECT_EQ(w.breakpoints().size(), 4u);
}

TEST(Waveform, InitialIsValueAtZero) {
    const Waveform w = Waveform::pwl({{0.0, 0.3}, {1e-9, 0.9}});
    EXPECT_DOUBLE_EQ(w.initial(), 0.3);
}

TEST(Waveform, ScaledMultipliesValues) {
    const Waveform w = Waveform::pwl({{1e-9, 1.0}, {2e-9, 2.0}}).scaled(0.5);
    EXPECT_DOUBLE_EQ(w.at(1e-9), 0.5);
    EXPECT_DOUBLE_EQ(w.at(2e-9), 1.0);
}

TEST(Waveform, BreakpointsExcludeZero) {
    const Waveform w = Waveform::pwl({{0.0, 0.0}, {1e-9, 1.0}});
    ASSERT_EQ(w.breakpoints().size(), 1u);
    EXPECT_DOUBLE_EQ(w.breakpoints()[0], 1e-9);
}

} // namespace
} // namespace tfetsram::spice
