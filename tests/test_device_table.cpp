// Lookup-table model tests: grid interpolation exactness, asinh round trip,
// fidelity of the tabulated model against its analytic source across the
// full 13-decade current range, and derivative continuity.

#include <gtest/gtest.h>

#include <cmath>

#include "device/grid2d.hpp"
#include "device/models.hpp"
#include "device/table_builder.hpp"
#include "util/rng.hpp"

namespace tfetsram::device {
namespace {

TEST(Grid2d, ReproducesLinearSurfaceExactly) {
    // Catmull-Rom reproduces polynomials up to cubic; a plane is trivial.
    Grid2d g(0.0, 1.0, 6, 0.0, 2.0, 6);
    for (std::size_t iy = 0; iy < g.ny(); ++iy)
        for (std::size_t ix = 0; ix < g.nx(); ++ix)
            g.at(ix, iy) = 2.0 * g.x_at(ix) - 3.0 * g.y_at(iy) + 1.0;

    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        const double y = rng.uniform(0.0, 2.0);
        const Grid2d::Sample s = g.eval(x, y);
        EXPECT_NEAR(s.f, 2.0 * x - 3.0 * y + 1.0, 1e-12);
        EXPECT_NEAR(s.fx, 2.0, 1e-9);
        EXPECT_NEAR(s.fy, -3.0, 1e-9);
    }
}

TEST(Grid2d, InterpolatesNodesExactly) {
    Grid2d g(-1.0, 1.0, 8, -1.0, 1.0, 8);
    for (std::size_t iy = 0; iy < g.ny(); ++iy)
        for (std::size_t ix = 0; ix < g.nx(); ++ix)
            g.at(ix, iy) = std::sin(3.0 * g.x_at(ix)) * g.y_at(iy);
    for (std::size_t iy = 1; iy + 1 < g.ny(); ++iy)
        for (std::size_t ix = 1; ix + 1 < g.nx(); ++ix) {
            const Grid2d::Sample s = g.eval(g.x_at(ix), g.y_at(iy));
            EXPECT_NEAR(s.f, g.at(ix, iy), 1e-12);
        }
}

TEST(Grid2d, ContinuousAcrossCellBoundaries) {
    Grid2d g(0.0, 1.0, 11, 0.0, 1.0, 11);
    for (std::size_t iy = 0; iy < g.ny(); ++iy)
        for (std::size_t ix = 0; ix < g.nx(); ++ix)
            g.at(ix, iy) = std::exp(g.x_at(ix)) * std::cos(g.y_at(iy));
    const double eps = 1e-10;
    // Value and gradient continuity at an interior node boundary.
    const double xb = g.x_at(5);
    const Grid2d::Sample lo = g.eval(xb - eps, 0.37);
    const Grid2d::Sample hi = g.eval(xb + eps, 0.37);
    EXPECT_NEAR(lo.f, hi.f, 1e-8);
    EXPECT_NEAR(lo.fx, hi.fx, 1e-5);
    EXPECT_NEAR(lo.fy, hi.fy, 1e-5);
}

TEST(Grid2d, LinearExtensionOutsideDomain) {
    Grid2d g(0.0, 1.0, 6, 0.0, 1.0, 6);
    for (std::size_t iy = 0; iy < g.ny(); ++iy)
        for (std::size_t ix = 0; ix < g.nx(); ++ix)
            g.at(ix, iy) = 5.0 * g.x_at(ix);
    const Grid2d::Sample s = g.eval(2.0, 0.5); // 1.0 beyond the edge
    EXPECT_NEAR(s.f, 10.0, 1e-9);
    EXPECT_NEAR(s.fx, 5.0, 1e-9);
    EXPECT_TRUE(std::isfinite(g.eval(100.0, -50.0).f));
}

TEST(Grid2d, RejectsTinyGrids) {
    EXPECT_THROW(Grid2d(0.0, 1.0, 3, 0.0, 1.0, 8), contract_violation);
}

TEST(Grid2d, GradientMatchesFiniteDifferencesEverywhere) {
    // Newton's Jacobian is only as good as fx/fy being the true partial
    // derivatives of the surface eval() reconstructs. Hold the analytic
    // gradient against central finite differences of eval() itself —
    // interior cells, edge cells, and the extrapolated region beyond the
    // table all included. A derivative taken from the wrong cell stencil
    // (the historical edge-cell bug) fails this at the 1e-2 level.
    Grid2d g(-0.5, 1.0, 7, -1.0, 0.5, 9);
    for (std::size_t iy = 0; iy < g.ny(); ++iy)
        for (std::size_t ix = 0; ix < g.nx(); ++ix)
            g.at(ix, iy) = std::sin(2.0 * g.x_at(ix)) *
                               std::exp(0.7 * g.y_at(iy)) +
                           0.3 * g.x_at(ix) * g.y_at(iy);

    const double h = 1e-6;
    const auto check = [&](double x, double y, const char* where) {
        const Grid2d::Sample s = g.eval(x, y);
        const double fx_fd =
            (g.eval(x + h, y).f - g.eval(x - h, y).f) / (2.0 * h);
        const double fy_fd =
            (g.eval(x, y + h).f - g.eval(x, y - h).f) / (2.0 * h);
        EXPECT_NEAR(s.fx, fx_fd, 1e-5 * (1.0 + std::fabs(fx_fd)))
            << where << " at (" << x << ", " << y << ")";
        EXPECT_NEAR(s.fy, fy_fd, 1e-5 * (1.0 + std::fabs(fy_fd)))
            << where << " at (" << x << ", " << y << ")";
    };

    // Interior cells, away from node boundaries.
    check(0.11, -0.23, "interior");
    check(0.42, 0.13, "interior");
    check(-0.07, -0.61, "interior");
    // Edge cells: the first/last interval along each axis, where the
    // interpolation stencil is one-sided.
    check(-0.45, -0.31, "x low edge");
    check(0.93, -0.42, "x high edge");
    check(0.21, -0.95, "y low edge");
    check(0.33, 0.44, "y high edge");
    // Corner cell: one-sided in both axes at once.
    check(-0.47, -0.97, "corner");
    check(0.95, 0.46, "corner");
    // Extrapolated region: the surface continues linearly, so the
    // analytic gradient must match the finite difference exactly there.
    check(-0.9, -0.2, "x below domain");
    check(1.4, -0.2, "x above domain");
    check(0.2, -1.5, "y below domain");
    check(0.2, 0.9, "y above domain");
    check(1.6, 1.1, "far corner extrapolation");
}

TEST(DeviceTable, OutputShapeOddAndSmooth) {
    const DeviceTable t("t", TableSpec{});
    const auto p = t.output_shape(0.3);
    const auto m = t.output_shape(-0.3);
    EXPECT_NEAR(p.f, -m.f, 1e-15);
    EXPECT_NEAR(p.df, m.df, 1e-15);
    const auto z = t.output_shape(0.0);
    EXPECT_NEAR(z.f, 0.0, 1e-15);
    EXPECT_NEAR(z.df, 1.0 / t.spec().v_out, 1e-12);
}

TEST(DeviceTable, MatchesAnalyticAcrossDecades) {
    // The output-function factorization keeps the stored surface smooth, so
    // the reconstruction tracks the source to a few percent across the
    // full 13-decade range INCLUDING the zero crossing at vds = 0.
    const auto analytic = make_ntfet();
    const auto table = build_table(*analytic);
    Rng rng(17);
    for (int k = 0; k < 400; ++k) {
        const double vgs = rng.uniform(-1.2, 1.2);
        const double vds = rng.uniform(-1.2, 1.2);
        const double ia = analytic->iv(vgs, vds).ids;
        const double it = table->iv(vgs, vds).ids;
        EXPECT_NEAR(it, ia, std::fabs(ia) * 0.05 + 1e-19)
            << "vgs=" << vgs << " vds=" << vds;
    }
}

TEST(DeviceTable, AccurateInsideTheFirstVdsCell) {
    // The historical failure mode: currents within one grid cell of
    // vds = 0 were underestimated by many orders. Now they reconstruct to
    // a few percent.
    const auto analytic = make_ntfet();
    const auto table = build_table(*analytic);
    Rng rng(19);
    for (int k = 0; k < 200; ++k) {
        const double vgs = rng.uniform(0.0, 1.2);
        const double vds = rng.uniform(-0.01, 0.01);
        const double ia = analytic->iv(vgs, vds).ids;
        const double it = table->iv(vgs, vds).ids;
        EXPECT_NEAR(it, ia, std::fabs(ia) * 0.08 + 1e-19)
            << "vgs=" << vgs << " vds=" << vds;
    }
}

TEST(DeviceTable, DerivativesConsistentWithReconstruction) {
    // Newton correctness requirement: gm/gds must be the exact derivatives
    // of the interpolated current surface.
    const auto table = build_table(*make_ntfet());
    Rng rng(23);
    for (int k = 0; k < 150; ++k) {
        const double vgs = rng.uniform(-1.0, 1.0);
        const double vds = rng.uniform(-1.0, 1.0);
        const spice::IvSample s = table->iv(vgs, vds);
        const double h = 1e-7;
        const double gm_fd =
            (table->iv(vgs + h, vds).ids - table->iv(vgs - h, vds).ids) /
            (2 * h);
        const double gds_fd =
            (table->iv(vgs, vds + h).ids - table->iv(vgs, vds - h).ids) /
            (2 * h);
        // The separable monotone-Hermite scheme is nonlinear in its data,
        // so cross-derivatives are consistent to ~percent rather than
        // machine precision; that is ample for Newton.
        EXPECT_NEAR(s.gm, gm_fd, std::fabs(gm_fd) * 2e-2 + 1e-10)
            << "vgs=" << vgs << " vds=" << vds;
        EXPECT_NEAR(s.gds, gds_fd, std::fabs(gds_fd) * 2e-2 + 1e-10)
            << "vgs=" << vgs << " vds=" << vds;
    }
}

TEST(DeviceTable, ConductancesMatchAnalyticInOrder) {
    // Guards against the catastrophic failure mode (conductance starved by
    // ten orders of magnitude at the vds = 0 crossing): the tabulated gds
    // must stay within a small factor of the analytic one wherever the
    // latter is significant.
    const auto analytic = make_ntfet();
    const auto table = build_table(*analytic);
    Rng rng(29);
    for (int k = 0; k < 200; ++k) {
        const double vgs = rng.uniform(-1.0, 1.0);
        const double vds = rng.uniform(-1.0, 1.0);
        const double gt = table->iv(vgs, vds).gds;
        const double ga = analytic->iv(vgs, vds).gds;
        if (ga < 1e-9)
            continue;
        EXPECT_GT(gt, 0.3 * ga) << "vgs=" << vgs << " vds=" << vds;
        EXPECT_LT(gt, 3.0 * ga) << "vgs=" << vgs << " vds=" << vds;
    }
}

TEST(DeviceTable, OnStateConductanceAtZeroVds) {
    // The latch-stability killer: an on device at vds = 0 must present its
    // full channel conductance, not the cliff-flattened slope.
    const auto analytic = make_ntfet();
    const auto table = build_table(*analytic);
    const double g_true = analytic->iv(0.8, 0.0).gds;
    const double g_tab = table->iv(0.8, 0.0).gds;
    EXPECT_GT(g_true, 1e-6);
    EXPECT_NEAR(g_tab, g_true, g_true * 0.05);
}

TEST(DeviceTable, CapsInterpolatedPositive) {
    const auto table = build_table(*make_ptfet());
    Rng rng(31);
    for (int k = 0; k < 100; ++k) {
        const spice::CvSample c =
            table->cv(rng.uniform(-1.4, 1.4), rng.uniform(-1.4, 1.4));
        EXPECT_GT(c.cgs, 0.0);
        EXPECT_GT(c.cgd, 0.0);
    }
}

TEST(DeviceTable, AnchorsSurviveTabulation) {
    const auto table = build_table(*make_ntfet());
    EXPECT_NEAR(table->iv(1.0, 1.0).ids, 1e-4, 1e-4 * 0.05);
    const double ioff = table->iv(0.0, 1.0).ids;
    EXPECT_GT(ioff, 1e-18);
    EXPECT_LT(ioff, 1e-16);
}

TEST(DeviceTable, NameMarksTabulated) {
    const auto table = build_table(*make_ntfet());
    EXPECT_NE(std::string(table->name()).find("[tab]"), std::string::npos);
}

TEST(ModelSet, TabulatedFlagControlsTfetsOnly) {
    const ModelSet tab = make_model_set({}, true);
    const ModelSet ana = make_model_set({}, false);
    EXPECT_NE(std::string(tab.ntfet->name()).find("[tab]"),
              std::string::npos);
    EXPECT_EQ(std::string(ana.ntfet->name()).find("[tab]"),
              std::string::npos);
    // CMOS stays analytic in both (the paper's flow tabulates TFETs only).
    EXPECT_EQ(std::string(tab.nmos->name()), "nMOS");
}

} // namespace
} // namespace tfetsram::device
