// Netlist front-end tests: number parsing, tokenization/continuation,
// element and directive coverage, error attribution, and end-to-end
// simulation of parsed decks (RC step, TFET inverter, the paper's cell).

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/netlist.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"

namespace tfetsram::netlist {
namespace {

TEST(SpiceNumber, PlainAndSuffixed) {
    EXPECT_DOUBLE_EQ(parse_spice_number("42"), 42.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("-1.5"), -1.5);
    EXPECT_DOUBLE_EQ(parse_spice_number("2.5k"), 2500.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("3meg"), 3e6);
    EXPECT_DOUBLE_EQ(parse_spice_number("1g"), 1e9);
    EXPECT_DOUBLE_EQ(parse_spice_number("10f"), 1e-14);
    EXPECT_DOUBLE_EQ(parse_spice_number("7p"), 7e-12);
    EXPECT_DOUBLE_EQ(parse_spice_number("3n"), 3e-9);
    EXPECT_DOUBLE_EQ(parse_spice_number("5u"), 5e-6);
    EXPECT_DOUBLE_EQ(parse_spice_number("2m"), 2e-3);
    EXPECT_DOUBLE_EQ(parse_spice_number("1e-9"), 1e-9);
}

TEST(SpiceNumber, UnitTailsIgnored) {
    // Classic SPICE: "2ns" == 2n, "10pF" == 10p.
    EXPECT_DOUBLE_EQ(parse_spice_number("2ns"), 2e-9);
    EXPECT_DOUBLE_EQ(parse_spice_number("10pF"), 1e-11);
}

TEST(SpiceNumber, Malformed) {
    EXPECT_THROW(parse_spice_number("abc"), ParseError);
    EXPECT_THROW(parse_spice_number(""), ParseError);
    EXPECT_THROW(parse_spice_number("1x"), ParseError);
}

TEST(Parse, TitleCommentsContinuation) {
    const Netlist nl = Netlist::parse("my title line\n"
                                      "* a comment\n"
                                      "R1 a 0\n"
                                      "+ 1k\n"
                                      "Vx a 0 DC 1 ; trailing comment\n"
                                      ".op\n"
                                      ".end\n");
    EXPECT_EQ(nl.title(), "my title line");
    EXPECT_EQ(nl.element_count(), 2u);
    ASSERT_EQ(nl.analyses().size(), 1u);
    EXPECT_EQ(nl.analyses()[0].kind, Analysis::Kind::kOperatingPoint);
}

TEST(Parse, ErrorsCarryLineNumbers) {
    try {
        Netlist::parse("t\nR1 a 0 1k\nXbogus a b c\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3u);
    }
}

TEST(Parse, RejectsUnknownDirective) {
    EXPECT_THROW(Netlist::parse("t\n.frobnicate\n"), ParseError);
}

TEST(Parse, RejectsMalformedPwl) {
    EXPECT_THROW(Netlist::parse("t\nV1 a 0 PWL(1 2 3)\n"), ParseError);
}

TEST(Parse, PrintDirective) {
    const Netlist nl =
        Netlist::parse("t\nR1 out 0 1k\nV1 out 0 DC 1\n.print v(out)\n");
    ASSERT_EQ(nl.print_nodes().size(), 1u);
    EXPECT_EQ(nl.print_nodes()[0], "out");
}

TEST(Build, RcDividerSolves) {
    const Netlist nl = Netlist::parse("divider\n"
                                      "V1 top 0 DC 1\n"
                                      "R1 top mid 1k\n"
                                      "R2 mid 0 3k\n");
    spice::Circuit ckt = nl.build();
    const spice::DcResult r = spice::solve_dc(ckt, {});
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(spice::node_voltage(r.x, ckt.node("mid")), 0.75, 1e-6);
}

TEST(Build, RcTransientMatchesAnalytic) {
    const Netlist nl = Netlist::parse("rc step\n"
                                      "V1 in 0 PWL(1n 0 1.001n 1)\n"
                                      "R1 in out 1k\n"
                                      "C1 out 0 1p\n");
    spice::Circuit ckt = nl.build();
    const spice::TransientResult tr = spice::solve_transient(ckt, {}, 4e-9);
    ASSERT_TRUE(tr.completed) << tr.message;
    const double expected = 1.0 - std::exp(-(3e-9 - 1e-9) / 1e-9);
    EXPECT_NEAR(tr.voltage_at(ckt.node("out"), 3e-9), expected, 0.02);
}

TEST(Build, SwitchElement) {
    const Netlist nl =
        Netlist::parse("sw\nV1 a 0 DC 1\nS1 a b 10 1e12 DC 1\nR1 b 0 10\n");
    spice::Circuit ckt = nl.build();
    const spice::DcResult r = spice::solve_dc(ckt, {});
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(spice::node_voltage(r.x, ckt.node("b")), 0.5, 1e-6);
}

TEST(Build, UndefinedModelRejected) {
    const Netlist nl = Netlist::parse(
        "bad\nM1 d g 0 nomodel W=1\nV1 d 0 DC 1\nVg g 0 DC 1\n");
    EXPECT_THROW(nl.build(), std::runtime_error);
}

TEST(Build, TfetInverterFromDeck) {
    const Netlist nl = Netlist::parse(
        "tfet inverter\n"
        ".model tn NTFET ()\n"
        ".model tp PTFET ()\n"
        "Vdd vdd 0 DC 0.8\n"
        "Vin in 0 DC 0\n"
        "MP out in vdd tp W=1\n"
        "MN out in 0 tn W=1\n");
    spice::Circuit ckt = nl.build();
    const spice::DcResult r = spice::solve_dc(ckt, {});
    ASSERT_TRUE(r.converged);
    EXPECT_GT(spice::node_voltage(r.x, ckt.node("out")), 0.75);
}

TEST(Build, ModelParametersApplied) {
    const Netlist nl = Netlist::parse(
        "param check\n"
        ".model hot NTFET (ion=1e-5 table=0)\n"
        "V1 d 0 DC 1\n"
        "Vg g 0 DC 1\n"
        "M1 d g 0 hot W=1\n");
    spice::Circuit ckt = nl.build();
    const spice::DcResult r = spice::solve_dc(ckt, {});
    ASSERT_TRUE(r.converged);
    // Ion recalibrated to 1e-5: the drain current at full bias must track.
    const auto* m = ckt.transistors().front();
    EXPECT_NEAR(m->drain_current(r.x), 1e-5, 2e-6);
}

TEST(Build, PaperCellDeckWritesOne) {
    // End-to-end: the shipped SRAM-cell deck must flip q from 0 to 1.
    const char* deck = R"(paper cell write
.model tn NTFET ()
.model tp PTFET ()
Vdd vdd 0 DC 0.8
Vwl wl 0 PWL(0 0.8 0.6n 0.8 0.605n 0 0.905n 0 0.91n 0.8)
Vbl  bl  0 DC 0.8
Vblb blb 0 PWL(0 0.8 0.1n 0.8 0.11n 0 1.0n 0 1.01n 0.8)
MPDL q  qb 0   tn W=0.6
MPUL q  qb vdd tp W=0.5
MPDR qb q  0   tn W=0.6
MPUR qb q  vdd tp W=0.5
MAXL q  wl bl  tp W=1
MAXR qb wl blb tp W=1
Cq  q  0 0.25f
Cqb qb 0 0.25f
.tran 1.4n
)";
    const Netlist nl = Netlist::parse(deck);
    spice::Circuit ckt = nl.build();
    // Seed the hold state q = 0.
    ckt.prepare();
    la::Vector guess(ckt.num_unknowns(), 0.0);
    guess[ckt.node("vdd") - 1] = 0.8;
    guess[ckt.node("qb") - 1] = 0.8;
    guess[ckt.node("bl") - 1] = 0.8;
    guess[ckt.node("blb") - 1] = 0.8;
    guess[ckt.node("wl") - 1] = 0.8;
    const spice::TransientResult tr =
        spice::solve_transient(ckt, {}, nl.analyses()[0].tstop, nullptr,
                               &guess);
    ASSERT_TRUE(tr.completed) << tr.message;
    EXPECT_GT(tr.final_voltage(ckt.node("q")), 0.7);
    EXPECT_LT(tr.final_voltage(ckt.node("qb")), 0.1);
}

TEST(Parse, NodesetDirective) {
    const Netlist nl = Netlist::parse(
        "t\nR1 q 0 1k\nV1 q 0 DC 1\n.nodeset v(q)=0.8 v(0)=0\n");
    ASSERT_EQ(nl.nodesets().size(), 2u);
    EXPECT_EQ(nl.nodesets()[0].first, "q");
    EXPECT_DOUBLE_EQ(nl.nodesets()[0].second, 0.8);
}

TEST(Parse, NodesetRejectsMalformed) {
    EXPECT_THROW(Netlist::parse("t\n.nodeset q=0.8\n"), ParseError);
}

TEST(Build, NodesetSelectsBistableState) {
    const char* deck = R"(latch
.model tn NTFET ()
.model tp PTFET ()
Vdd vdd 0 DC 0.8
MP1 a b vdd tp W=0.5
MN1 a b 0   tn W=0.6
MP2 b a vdd tp W=0.5
MN2 b a 0   tn W=0.6
.nodeset v(a)=0.8 v(b)=0 v(vdd)=0.8
)";
    const Netlist nl = Netlist::parse(deck);
    spice::Circuit ckt = nl.build();
    const la::Vector guess = nl.initial_guess(ckt);
    const spice::DcResult r = spice::solve_dc(ckt, {}, 0.0, &guess);
    ASSERT_TRUE(r.converged);
    EXPECT_GT(spice::node_voltage(r.x, ckt.node("a")) -
                  spice::node_voltage(r.x, ckt.node("b")),
              0.6);
}

TEST(Parse, AcDirectiveAndStimulus) {
    const Netlist nl = Netlist::parse("t\n"
                                      "Vin in 0 DC 0.4 AC 2\n"
                                      "R1 in 0 1k\n"
                                      ".ac dec 5 1k 1meg\n");
    ASSERT_EQ(nl.analyses().size(), 1u);
    EXPECT_EQ(nl.analyses()[0].kind, Analysis::Kind::kAc);
    EXPECT_EQ(nl.analyses()[0].points_per_decade, 5u);
    EXPECT_DOUBLE_EQ(nl.analyses()[0].f_start, 1e3);
    EXPECT_DOUBLE_EQ(nl.analyses()[0].f_stop, 1e6);
    EXPECT_EQ(nl.ac_source(), "Vin");
    EXPECT_DOUBLE_EQ(nl.ac_magnitude(), 2.0);
    // The DC value survives the AC marker.
    spice::Circuit ckt = nl.build();
    EXPECT_DOUBLE_EQ(ckt.voltage_sources()[0]->waveform().initial(), 0.4);
}

TEST(Parse, AcRejectsBadSweep) {
    EXPECT_THROW(Netlist::parse("t\n.ac dec 5 1meg 1k\n"), ParseError);
    EXPECT_THROW(Netlist::parse("t\n.ac lin 5 1k 1meg\n"), ParseError);
    EXPECT_THROW(Netlist::parse("t\nI1 a 0 DC 1 AC 1\n"), ParseError);
}

TEST(Parse, DuplicateElementNameRejected) {
    try {
        Netlist::parse("t\nR1 a 0 1k\nV1 a 0 DC 1\nr1 a 0 2k\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        // Case-insensitive (classic SPICE), attributed to the duplicate.
        EXPECT_EQ(e.line(), 4u);
        EXPECT_NE(std::string(e.what()).find("duplicate element"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Parse, DanglingNodeRejected) {
    // "mid" touches only R1's second terminal: one connection, not ground,
    // not a declared port.
    try {
        Netlist::parse("t\nV1 a 0 DC 1\nR1 a mid 1k\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("dangling node 'mid'"),
                  std::string::npos);
    }
}

TEST(Parse, PortsExemptDanglingNodes) {
    // The same single-ended node is fine once declared as a port — that is
    // exactly what .ports is for (external connection points).
    const Netlist nl =
        Netlist::parse("t\nV1 a 0 DC 1\nR1 a mid 1k\n.ports mid\n");
    ASSERT_EQ(nl.ports().size(), 1u);
    EXPECT_EQ(nl.ports()[0], "mid");
}

TEST(Parse, PortsAccessorLowercasesAndKeepsOrder) {
    const Netlist nl = Netlist::parse("t\n"
                                      "V1 Q 0 DC 1\n"
                                      "R1 Q QB 1k\n"
                                      "V2 QB 0 DC 0\n"
                                      ".ports Q QB\n");
    ASSERT_EQ(nl.ports().size(), 2u);
    EXPECT_EQ(nl.ports()[0], "q");
    EXPECT_EQ(nl.ports()[1], "qb");
}

TEST(Parse, PortsRejectsUndeclaredNode) {
    try {
        Netlist::parse("t\nV1 a 0 DC 1\nR1 a 0 1k\n.ports ghost\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 4u);
        EXPECT_NE(std::string(e.what()).find("undeclared node 'ghost'"),
                  std::string::npos);
    }
}

TEST(Parse, PortsRejectsEmptyDirective) {
    EXPECT_THROW(Netlist::parse("t\nR1 a 0 1k\nV1 a 0 DC 1\n.ports\n"),
                 ParseError);
}

TEST(Parse, PrintRejectsUndeclaredNode) {
    EXPECT_THROW(
        Netlist::parse("t\nR1 a 0 1k\nV1 a 0 DC 1\n.print v(ghost)\n"),
        ParseError);
}

TEST(Parse, NodesetRejectsUndeclaredNode) {
    EXPECT_THROW(
        Netlist::parse("t\nR1 a 0 1k\nV1 a 0 DC 1\n.nodeset v(ghost)=0.5\n"),
        ParseError);
}

TEST(Build, EachBuildIsIndependent) {
    const Netlist nl = Netlist::parse("t\nV1 a 0 DC 1\nR1 a 0 1k\n");
    spice::Circuit c1 = nl.build();
    spice::Circuit c2 = nl.build();
    EXPECT_EQ(c1.num_nodes(), c2.num_nodes());
    const spice::DcResult r1 = spice::solve_dc(c1, {});
    const spice::DcResult r2 = spice::solve_dc(c2, {});
    EXPECT_TRUE(r1.converged);
    EXPECT_TRUE(r2.converged);
}

} // namespace
} // namespace tfetsram::netlist
