// Unit tests for the linear algebra kernels under the MNA solver: the
// dense Matrix/LuFactorization pair and the sparse SparseMatrix/SparseLu
// pair (pattern lifecycle, orderings, and factorization edge cases; the
// sparse-vs-dense behavioural comparison lives in test_sparse_diff.cpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/sparse_lu.hpp"
#include "la/sparse_matrix.hpp"
#include "util/rng.hpp"

namespace tfetsram::la {
namespace {

TEST(Matrix, IdentityAndMultiply) {
    const Matrix id = Matrix::identity(3);
    const Vector x = {1.0, 2.0, 3.0};
    const Vector y = id.multiply(x);
    EXPECT_EQ(y, x);
}

TEST(Matrix, SetZero) {
    Matrix m(2, 2, 5.0);
    m.set_zero();
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

TEST(Matrix, BoundsChecked) {
    Matrix m(2, 2);
    EXPECT_THROW(m(2, 0), contract_violation);
}

TEST(Matrix, Norms) {
    const Vector v = {3.0, -4.0};
    EXPECT_DOUBLE_EQ(norm2(v), 5.0);
    EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

TEST(Lu, Solves2x2) {
    Matrix a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    const auto x = solve_linear(a, {5.0, 10.0});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 1.0, 1e-12);
    EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
    // Zero on the diagonal forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    const auto x = solve_linear(a, {2.0, 3.0});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 3.0, 1e-12);
    EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_FALSE(solve_linear(a, {1.0, 2.0}).has_value());
}

TEST(Lu, FactorReusableAcrossRhs) {
    Matrix a(2, 2);
    a(0, 0) = 4.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    const auto lu = LuFactorization::factor(a);
    ASSERT_TRUE(lu.has_value());
    const Vector x1 = lu->solve({5.0, 4.0});
    const Vector x2 = lu->solve({9.0, 7.0});
    const Vector y1 = a.multiply(x1);
    const Vector y2 = a.multiply(x2);
    EXPECT_NEAR(y1[0], 5.0, 1e-12);
    EXPECT_NEAR(y1[1], 4.0, 1e-12);
    EXPECT_NEAR(y2[0], 9.0, 1e-12);
    EXPECT_NEAR(y2[1], 7.0, 1e-12);
}

class LuRandomSystems : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSystems, ResidualSmall) {
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 977 + 5);
    Matrix a(n, n);
    Vector b(n);
    for (int r = 0; r < n; ++r) {
        b[r] = rng.uniform(-1.0, 1.0);
        for (int c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
        a(r, r) += 4.0; // diagonally dominant => nonsingular
    }
    const auto x = solve_linear(a, b);
    ASSERT_TRUE(x.has_value());
    const Vector res = subtract(a.multiply(*x), b);
    EXPECT_LT(norm_inf(res), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSystems,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Lu, PivotSpreadFinite) {
    Matrix a = Matrix::identity(3);
    a(2, 2) = 1e-6;
    const auto lu = LuFactorization::factor(a);
    ASSERT_TRUE(lu.has_value());
    EXPECT_NEAR(lu->pivot_spread_log10(), 6.0, 1e-9);
}

// ------------------------------------------------------------ SparseMatrix

TEST(SparseMatrix, DuplicateRegistrationsCollapseAndAddsAccumulate) {
    SparseMatrix m(2, 2);
    m.reserve_entry(0, 0);
    m.reserve_entry(0, 0); // duplicate collapses into one stored entry
    m.reserve_entry(0, 1);
    m.reserve_entry(1, 1);
    m.finalize_pattern();
    EXPECT_EQ(m.nnz(), 3u);

    m.add(0, 0, 2.0);
    m.add(0, 0, 3.0); // accumulation, SPICE-stamp style
    m.add(0, 1, -1.0);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0); // registered but never stamped
    EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0); // outside the pattern reads 0
}

TEST(SparseMatrix, AddOutsidePatternIsContractViolation) {
    SparseMatrix m(2, 2);
    m.reserve_entry(0, 0);
    m.finalize_pattern();
    EXPECT_THROW(m.add(1, 1, 1.0), contract_violation);
}

TEST(SparseMatrix, CsrRoundTripsThroughDense) {
    Rng rng(99);
    Matrix a(6, 6);
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            if (rng.uniform(0.0, 1.0) < 0.4)
                a(r, c) = rng.uniform(-2.0, 2.0);
    const SparseMatrix s = SparseMatrix::from_dense(a);
    const Matrix back = s.to_dense();
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            EXPECT_EQ(back(r, c), a(r, c)) << r << "," << c;

    // CSR invariants: monotone row_ptr, strictly sorted columns per row.
    const auto& rp = s.row_ptr();
    const auto& ci = s.col_idx();
    ASSERT_EQ(rp.size(), 7u);
    EXPECT_EQ(rp.back(), s.nnz());
    for (std::size_t r = 0; r < 6; ++r) {
        EXPECT_LE(rp[r], rp[r + 1]);
        for (std::size_t k = rp[r] + 1; k < rp[r + 1]; ++k)
            EXPECT_LT(ci[k - 1], ci[k]);
    }
}

TEST(SparseMatrix, MultiplyMatchesDense) {
    Rng rng(5);
    Matrix a(5, 5);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            if ((r + c) % 2 == 0)
                a(r, c) = rng.uniform(-1.0, 1.0);
    const SparseMatrix s = SparseMatrix::from_dense(a);
    Vector x(5);
    for (auto& v : x)
        v = rng.uniform(-1.0, 1.0);
    const Vector yd = a.multiply(x);
    const Vector ys = s.multiply(x);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_NEAR(ys[i], yd[i], 1e-14);
}

TEST(SparseMatrix, EmptyAndOneByOne) {
    SparseMatrix empty(0, 0);
    empty.finalize_pattern();
    EXPECT_EQ(empty.nnz(), 0u);

    SparseMatrix one(1, 1);
    one.reserve_entry(0, 0);
    one.finalize_pattern();
    one.add(0, 0, 3.5);
    EXPECT_DOUBLE_EQ(one.at(0, 0), 3.5);
    SparseLu lu;
    lu.analyze(one);
    ASSERT_TRUE(lu.refactor(one));
    const Vector x = lu.solve({7.0});
    EXPECT_NEAR(x[0], 2.0, 1e-15);
}

TEST(SparseMatrix, ResetReturnsToPatternPhase) {
    SparseMatrix m(2, 2);
    m.reserve_entry(0, 0);
    m.finalize_pattern();
    EXPECT_TRUE(m.finalized());
    m.reset(3, 3);
    EXPECT_FALSE(m.finalized());
    m.reserve_entry(2, 2);
    m.finalize_pattern();
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.nnz(), 1u);
}

// ---------------------------------------------------------------- ordering

TEST(MinimumDegree, ProducesAValidPermutation) {
    Rng rng(31);
    Matrix a(12, 12);
    for (std::size_t r = 0; r < 12; ++r) {
        a(r, r) = 1.0;
        for (std::size_t c = 0; c < 12; ++c)
            if (rng.uniform(0.0, 1.0) < 0.2)
                a(r, c) = 1.0;
    }
    const SparseMatrix s = SparseMatrix::from_dense(a);
    const std::vector<std::size_t> q = minimum_degree_order(s);
    ASSERT_EQ(q.size(), 12u);
    std::vector<std::size_t> sorted = q;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(sorted[i], i) << "not a permutation";
}

TEST(MinimumDegree, ArrowMatrixEliminatesDenseColumnLast) {
    // Arrow matrix: dense first row/column + diagonal. Eliminating column
    // 0 first would fill the whole matrix; minimum degree must defer it
    // behind the degree-1 columns, keeping the factor fill-free.
    const std::size_t n = 10;
    SparseMatrix s(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        s.reserve_entry(i, i);
        s.reserve_entry(0, i);
        s.reserve_entry(i, 0);
    }
    s.finalize_pattern();
    const std::vector<std::size_t> q = minimum_degree_order(s);
    // Once only the hub and a single spoke remain they are both degree 1,
    // so the hub may come in either of the final two slots — but never
    // earlier, where eliminating it would clique the remaining spokes.
    const auto hub = std::find(q.begin(), q.end(), std::size_t{0});
    ASSERT_NE(hub, q.end());
    EXPECT_GE(static_cast<std::size_t>(hub - q.begin()), n - 2)
        << "hub column eliminated while multiple spokes remained";

    // And the factorization of the well-conditioned arrow stays fill-free:
    // lu_nnz equals the pattern nnz.
    s.set_zero();
    for (std::size_t i = 0; i < n; ++i) {
        s.add(i, i, 4.0);
        if (i > 0) {
            s.add(0, i, 1.0);
            s.add(i, 0, 1.0);
        } else {
            s.add(0, 0, 1.0); // total 5 on the hub diagonal
        }
    }
    SparseLu lu;
    lu.analyze(s);
    ASSERT_TRUE(lu.refactor(s));
    EXPECT_EQ(lu.lu_nnz(), s.nnz());
}

namespace {

/// 5-point Laplacian pattern and values on a k x k grid — the canonical
/// grid-like pattern the array MNA systems resemble.
SparseMatrix grid_laplacian(std::size_t k) {
    const std::size_t n = k * k;
    SparseMatrix s(n, n);
    const auto id = [k](std::size_t i, std::size_t j) { return i * k + j; };
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j) {
            s.reserve_entry(id(i, j), id(i, j));
            if (i + 1 < k) {
                s.reserve_entry(id(i, j), id(i + 1, j));
                s.reserve_entry(id(i + 1, j), id(i, j));
            }
            if (j + 1 < k) {
                s.reserve_entry(id(i, j), id(i, j + 1));
                s.reserve_entry(id(i, j + 1), id(i, j));
            }
        }
    s.finalize_pattern();
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j) {
            s.add(id(i, j), id(i, j), 4.0);
            if (i + 1 < k) {
                s.add(id(i, j), id(i + 1, j), -1.0);
                s.add(id(i + 1, j), id(i, j), -1.0);
            }
            if (j + 1 < k) {
                s.add(id(i, j), id(i, j + 1), -1.0);
                s.add(id(i, j + 1), id(i, j), -1.0);
            }
        }
    return s;
}

} // namespace

TEST(Amd, ProducesAValidPermutation) {
    Rng rng(31);
    Matrix a(12, 12);
    for (std::size_t r = 0; r < 12; ++r) {
        a(r, r) = 1.0;
        for (std::size_t c = 0; c < 12; ++c)
            if (rng.uniform(0.0, 1.0) < 0.2)
                a(r, c) = 1.0;
    }
    const SparseMatrix s = SparseMatrix::from_dense(a);
    const std::vector<std::size_t> q = amd_order(s);
    ASSERT_EQ(q.size(), 12u);
    std::vector<std::size_t> sorted = q;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(sorted[i], i) << "not a permutation";
}

TEST(Amd, DeterministicAcrossRepeatsAndRebuilds) {
    // Every AMD decision is index-based: the same pattern must produce
    // the same order on repeated calls and on an independently rebuilt
    // copy of the pattern.
    const SparseMatrix s = grid_laplacian(7);
    const std::vector<std::size_t> q1 = amd_order(s);
    const std::vector<std::size_t> q2 = amd_order(s);
    EXPECT_EQ(q1, q2);
    const SparseMatrix rebuilt = grid_laplacian(7);
    EXPECT_EQ(amd_order(rebuilt), q1);
}

TEST(Amd, ArrowMatrixEliminatesDenseColumnLast) {
    // Same property the greedy ordering guarantees: the hub of an arrow
    // matrix must not be eliminated while multiple spokes remain, or the
    // factor cliques the remaining spokes.
    const std::size_t n = 10;
    SparseMatrix s(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        s.reserve_entry(i, i);
        s.reserve_entry(0, i);
        s.reserve_entry(i, 0);
    }
    s.finalize_pattern();
    const std::vector<std::size_t> q = amd_order(s);
    const auto hub = std::find(q.begin(), q.end(), std::size_t{0});
    ASSERT_NE(hub, q.end());
    EXPECT_GE(static_cast<std::size_t>(hub - q.begin()), n - 2)
        << "hub column eliminated while multiple spokes remained";

    for (std::size_t i = 0; i < n; ++i) {
        s.add(i, i, 4.0);
        if (i > 0) {
            s.add(0, i, 1.0);
            s.add(i, 0, 1.0);
        } else {
            s.add(0, 0, 1.0);
        }
    }
    SparseLu lu;
    lu.analyze(s); // default ordering is AMD
    ASSERT_TRUE(lu.refactor(s));
    EXPECT_EQ(lu.lu_nnz(), s.nnz()) << "arrow factor should be fill-free";
}

TEST(Amd, FillCompetitiveWithGreedyOnGridPattern) {
    // On the grid-like patterns arrays produce, AMD's approximation must
    // land within a few percent of the exact greedy scan — and both must
    // clearly beat no ordering at all.
    const SparseMatrix s = grid_laplacian(9);
    SparseLu amd, greedy, natural;
    amd.analyze(s); // default ordering is AMD
    greedy.analyze(s, minimum_degree_order(s));
    std::vector<std::size_t> identity(s.rows());
    std::iota(identity.begin(), identity.end(), std::size_t{0});
    natural.analyze(s, std::move(identity));
    ASSERT_TRUE(amd.refactor(s));
    ASSERT_TRUE(greedy.refactor(s));
    ASSERT_TRUE(natural.refactor(s));
    EXPECT_LE(amd.lu_nnz(), greedy.lu_nnz() * 105 / 100);
    EXPECT_LT(amd.lu_nnz(), natural.lu_nnz());
    EXPECT_GE(amd.lu_nnz(), s.nnz());
}

// ------------------------------------------------- static-pivot fast path

TEST(SparseLuStaticPivot, SecondRefactorReusesThePivotSequence) {
    SparseMatrix s = grid_laplacian(5);
    SparseLu lu;
    lu.analyze(s);
    ASSERT_TRUE(lu.refactor(s));
    EXPECT_FALSE(lu.last_refactor().static_hit)
        << "first refactor has no sequence to reuse";
    ASSERT_TRUE(lu.refactor(s));
    EXPECT_TRUE(lu.last_refactor().static_hit);
    EXPECT_EQ(lu.last_refactor().fallbacks, 0u);
}

TEST(SparseLuStaticPivot, DecayedPivotFallsBackAndStaysAccurate) {
    // Pin the elimination order so the column whose diagonal decays is
    // eliminated first: the reused pivot drops to 1e-9 against a column
    // magnitude of 1, far below the static floor, so the sweep must
    // abandon the reuse and a fresh pivot search must take over.
    SparseMatrix s(2, 2);
    s.reserve_entry(0, 0);
    s.reserve_entry(0, 1);
    s.reserve_entry(1, 0);
    s.reserve_entry(1, 1);
    s.finalize_pattern();
    s.add(0, 0, 4.0);
    s.add(0, 1, 1.0);
    s.add(1, 0, 1.0);
    s.add(1, 1, 4.0);
    SparseLu lu;
    lu.analyze(s, {0, 1});
    ASSERT_TRUE(lu.refactor(s));

    s.set_zero();
    s.add(0, 0, 1e-9);
    s.add(0, 1, 1.0);
    s.add(1, 0, 1.0);
    s.add(1, 1, 4.0);
    ASSERT_TRUE(lu.refactor(s));
    EXPECT_FALSE(lu.last_refactor().static_hit);
    EXPECT_GE(lu.last_refactor().fallbacks, 1u);
    const Vector x = lu.solve({1.0, 2.0});
    // Exact solution of [[1e-9, 1], [1, 4]] x = [1, 2].
    const double x0 = (4.0 - 2.0) / (4e-9 - 1.0);
    const double x1 = (1.0 - 1e-9 * x0);
    EXPECT_NEAR(x[0], x0, 1e-9);
    EXPECT_NEAR(x[1], x1, 1e-9);
}

TEST(SparseLuGrowth, DiagonalPreferenceBlowupRetriesWithFullPivoting) {
    // Column diagonals sit just inside the diagonal-preference window
    // (|diag| = 1 vs column max 9.99), so threshold pivoting keeps them
    // and the dense last column amplifies by ~11x per elimination step:
    // growth overflows the bound and the factorization must be redone
    // with pure partial pivoting before the solve is trusted.
    const std::size_t n = 14;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = 1.0;
        a(i, n - 1) = 1.0;
        for (std::size_t r = i + 1; r < n; ++r)
            a(r, i) = -9.99;
    }
    const SparseMatrix s = SparseMatrix::from_dense(a);
    SparseLu lu;
    std::vector<std::size_t> identity(n);
    std::iota(identity.begin(), identity.end(), std::size_t{0});
    lu.analyze(s, std::move(identity));
    ASSERT_TRUE(lu.refactor(s));
    EXPECT_GE(lu.last_refactor().fallbacks, 1u)
        << "growth monitor should have rejected the first factor";
    EXPECT_LT(lu.last_refactor().growth, 1e10)
        << "accepted factor must respect the growth bound";

    Vector expect(n);
    for (std::size_t i = 0; i < n; ++i)
        expect[i] = 0.5 + 0.1 * static_cast<double>(i);
    const Vector x = lu.solve(s.multiply(expect));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], expect[i], 1e-9) << "component " << i;
}

// ---------------------------------------------------------------- SparseLu

TEST(SparseLu, DensePatternMatchesDenseKernel) {
    // A fully dense pattern is the degenerate case: the sparse kernel must
    // still agree with the dense one (no shortcuts that assume sparsity).
    Rng rng(17);
    const std::size_t n = 9;
    Matrix a(n, n);
    Vector b(n);
    for (std::size_t r = 0; r < n; ++r) {
        b[r] = rng.uniform(-1.0, 1.0);
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
        a(r, r) += 4.0;
    }
    const auto xd = solve_linear(a, b);
    ASSERT_TRUE(xd.has_value());
    const SparseMatrix s = SparseMatrix::from_dense(a);
    EXPECT_EQ(s.nnz(), n * n);
    SparseLu lu;
    lu.analyze(s);
    ASSERT_TRUE(lu.refactor(s));
    const Vector xs = lu.solve(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(xs[i], (*xd)[i], 1e-11);
}

TEST(SparseLu, ZeroDiagonalRequiresPivoting) {
    // The MNA voltage-source shape: structurally zero diagonal on the
    // constraint row. Solvable only with row pivoting.
    SparseMatrix s(2, 2);
    s.reserve_entry(0, 1);
    s.reserve_entry(1, 0);
    s.finalize_pattern();
    s.add(0, 1, 1.0);
    s.add(1, 0, 1.0);
    SparseLu lu;
    lu.analyze(s);
    ASSERT_TRUE(lu.refactor(s));
    const Vector x = lu.solve({2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-15);
    EXPECT_NEAR(x[1], 2.0, 1e-15);
}

TEST(SparseLu, PivotSpreadMatchesDenseDiagnostic) {
    Matrix a = Matrix::identity(3);
    a(2, 2) = 1e-6;
    const SparseMatrix s = SparseMatrix::from_dense(a);
    SparseLu lu;
    lu.analyze(s);
    ASSERT_TRUE(lu.refactor(s));
    EXPECT_NEAR(lu.pivot_spread_log10(), 6.0, 1e-9);
    EXPECT_GE(lu.fill_ratio(), 1.0 - 1e-12);
}

TEST(SparseLu, RecoversAfterSingularRefactor) {
    // A singular refactor must not poison the analysis: restoring good
    // values and refactoring again succeeds (the Newton fallback chain
    // retries with different gmin after a failed factorization).
    SparseMatrix s(2, 2);
    s.reserve_entry(0, 0);
    s.reserve_entry(1, 1);
    s.finalize_pattern();
    SparseLu lu;
    lu.analyze(s);
    EXPECT_FALSE(lu.refactor(s)); // all-zero values: singular

    s.add(0, 0, 2.0);
    s.add(1, 1, 4.0);
    ASSERT_TRUE(lu.refactor(s));
    const Vector x = lu.solve({2.0, 8.0});
    EXPECT_NEAR(x[0], 1.0, 1e-15);
    EXPECT_NEAR(x[1], 2.0, 1e-15);
}

} // namespace
} // namespace tfetsram::la
