// Unit tests for the dense linear algebra kernel under the MNA solver.

#include <gtest/gtest.h>

#include <cmath>

#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace tfetsram::la {
namespace {

TEST(Matrix, IdentityAndMultiply) {
    const Matrix id = Matrix::identity(3);
    const Vector x = {1.0, 2.0, 3.0};
    const Vector y = id.multiply(x);
    EXPECT_EQ(y, x);
}

TEST(Matrix, SetZero) {
    Matrix m(2, 2, 5.0);
    m.set_zero();
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

TEST(Matrix, BoundsChecked) {
    Matrix m(2, 2);
    EXPECT_THROW(m(2, 0), contract_violation);
}

TEST(Matrix, Norms) {
    const Vector v = {3.0, -4.0};
    EXPECT_DOUBLE_EQ(norm2(v), 5.0);
    EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

TEST(Lu, Solves2x2) {
    Matrix a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    const auto x = solve_linear(a, {5.0, 10.0});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 1.0, 1e-12);
    EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
    // Zero on the diagonal forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    const auto x = solve_linear(a, {2.0, 3.0});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 3.0, 1e-12);
    EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_FALSE(solve_linear(a, {1.0, 2.0}).has_value());
}

TEST(Lu, FactorReusableAcrossRhs) {
    Matrix a(2, 2);
    a(0, 0) = 4.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    const auto lu = LuFactorization::factor(a);
    ASSERT_TRUE(lu.has_value());
    const Vector x1 = lu->solve({5.0, 4.0});
    const Vector x2 = lu->solve({9.0, 7.0});
    const Vector y1 = a.multiply(x1);
    const Vector y2 = a.multiply(x2);
    EXPECT_NEAR(y1[0], 5.0, 1e-12);
    EXPECT_NEAR(y1[1], 4.0, 1e-12);
    EXPECT_NEAR(y2[0], 9.0, 1e-12);
    EXPECT_NEAR(y2[1], 7.0, 1e-12);
}

class LuRandomSystems : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSystems, ResidualSmall) {
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 977 + 5);
    Matrix a(n, n);
    Vector b(n);
    for (int r = 0; r < n; ++r) {
        b[r] = rng.uniform(-1.0, 1.0);
        for (int c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
        a(r, r) += 4.0; // diagonally dominant => nonsingular
    }
    const auto x = solve_linear(a, b);
    ASSERT_TRUE(x.has_value());
    const Vector res = subtract(a.multiply(*x), b);
    EXPECT_LT(norm_inf(res), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSystems,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Lu, PivotSpreadFinite) {
    Matrix a = Matrix::identity(3);
    a(2, 2) = 1e-6;
    const auto lu = LuFactorization::factor(a);
    ASSERT_TRUE(lu.has_value());
    EXPECT_NEAR(lu->pivot_spread_log10(), 6.0, 1e-9);
}

} // namespace
} // namespace tfetsram::la
