// Unit tests for the util layer: statistics, histograms, ranges, units,
// table printing, CSV escaping, RNG determinism, environment parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/histogram.hpp"
#include "util/ranges.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

namespace tfetsram {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Stats, BasicMoments) {
    const double xs[] = {1.0, 2.0, 3.0, 4.0, 5.0};
    const SampleSummary s = summarize(xs);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, InfiniteSamplesCountedSeparately) {
    const double xs[] = {1.0, kInf, 3.0, kInf};
    const SampleSummary s = summarize(xs);
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.n_infinite, 2u);
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(Stats, AllNonFinite) {
    const double xs[] = {kInf, -kInf};
    const SampleSummary s = summarize(xs);
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.n_infinite, 2u);
}

TEST(Stats, SingleSample) {
    const double xs[] = {42.0};
    const SampleSummary s = summarize(xs);
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 42.0);
}

TEST(Stats, PercentileInterpolates) {
    const double xs[] = {0.0, 1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 1.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 3.0);
}

TEST(Histogram, BinningAndEdges) {
    Histogram h(0.0, 10.0, 10);
    h.add(0.0);   // first bin
    h.add(9.999); // last bin
    h.add(5.0);   // bin 5
    h.add(10.0);  // overflow (right-open range)
    h.add(-0.1);  // underflow
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.count(5), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, NonFiniteCounted) {
    Histogram h(0.0, 1.0, 4);
    h.add(kInf);
    h.add(std::nan(""));
    EXPECT_EQ(h.nonfinite(), 2u);
}

TEST(Histogram, OfSpansSampleRange) {
    const double xs[] = {2.0, 4.0, 8.0};
    const Histogram h = Histogram::of(xs, 6);
    EXPECT_LE(h.lo(), 2.0);
    EXPECT_GT(h.hi(), 8.0);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.underflow() + h.overflow(), 0u);
}

TEST(Histogram, RenderMentionsFailures) {
    Histogram h(0.0, 1.0, 4);
    h.add(kInf);
    h.add(0.5);
    EXPECT_NE(h.render().find("non-finite"), std::string::npos);
}

TEST(Ranges, Linspace) {
    const auto v = linspace(0.0, 1.0, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.front(), 0.0);
    EXPECT_DOUBLE_EQ(v.back(), 1.0);
    EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Ranges, LinspaceSinglePoint) {
    const auto v = linspace(3.0, 9.0, 1);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(Ranges, Logspace) {
    const auto v = logspace(1.0, 1000.0, 4);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_NEAR(v[1], 10.0, 1e-9);
    EXPECT_NEAR(v[2], 100.0, 1e-9);
}

TEST(Ranges, Arange) {
    const auto v = arange(0.5, 1.0, 0.1);
    ASSERT_EQ(v.size(), 6u);
    EXPECT_NEAR(v.back(), 1.0, 1e-9);
}

TEST(Units, SiPrefixes) {
    EXPECT_EQ(format_si(4.5e-11, "s"), "45 ps");
    EXPECT_EQ(format_si(1.0, "V"), "1 V");
    EXPECT_EQ(format_si(0.0, "W"), "0 W");
    EXPECT_EQ(format_si(2.5e-15, "A"), "2.5 fA");
}

TEST(Units, NonFinite) {
    EXPECT_EQ(format_si(kInf, "s"), "inf s");
    EXPECT_EQ(format_si(std::nan(""), "s"), "nan");
}

TEST(Units, TinyFallsBackToScientific) {
    const std::string s = format_si(1e-30, "A");
    EXPECT_NE(s.find("e-30"), std::string::npos);
}

TEST(TablePrinter, AlignsColumns) {
    TablePrinter t({"a", "long-header"});
    t.add_row({"xxxx", "1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("xxxx"), std::string::npos);
    EXPECT_EQ(t.row_count(), 1u);
}

TEST(TablePrinter, RejectsMismatchedRow) {
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), contract_violation);
}

TEST(Csv, EscapesSpecials) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, WritesRowsRoundTrip) {
    const std::string path = ::testing::TempDir() + "tfetsram_csv_test.csv";
    {
        CsvWriter w(path);
        w.write_row(std::vector<std::string>{"a", "b,c"});
        w.write_row(std::vector<double>{1.5, 2.5e-12});
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line1;
    std::string line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "a,\"b,c\"");
    EXPECT_NE(line2.find("1.5"), std::string::npos);
    EXPECT_NE(line2.find("e-12"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
                 std::runtime_error);
}

TEST(Rng, Deterministic) {
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, TruncatedNormalRespectsBounds) {
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.truncated_normal(10.0, 1.0, 0.5);
        EXPECT_GE(x, 9.5);
        EXPECT_LE(x, 10.5);
    }
}

TEST(Rng, ZeroSigmaIsMean) {
    Rng r(3);
    EXPECT_DOUBLE_EQ(r.normal(5.0, 0.0), 5.0);
    EXPECT_DOUBLE_EQ(r.truncated_normal(5.0, 0.0, 1.0), 5.0);
}

TEST(Contracts, ExpectsThrows) {
    EXPECT_THROW(TFET_EXPECTS(false), contract_violation);
    EXPECT_NO_THROW(TFET_EXPECTS(true));
}

TEST(Env, ParseIntAcceptsSignedDecimals) {
    EXPECT_EQ(env::parse_int("42"), 42);
    EXPECT_EQ(env::parse_int("-7"), -7);
    EXPECT_EQ(env::parse_int("+9"), 9);
    EXPECT_EQ(env::parse_int("0"), 0);
}

TEST(Env, ParseIntRejectsJunkEmptyAndOverflow) {
    EXPECT_FALSE(env::parse_int("").has_value());
    EXPECT_FALSE(env::parse_int("12x").has_value());
    EXPECT_FALSE(env::parse_int("x12").has_value());
    EXPECT_FALSE(env::parse_int("-").has_value());
    EXPECT_FALSE(env::parse_int("1e3").has_value());
    EXPECT_FALSE(env::parse_int("99999999999999999999999").has_value());
}

TEST(Env, ParseBoolRecognizesBothSpellingsCaseInsensitively) {
    for (const char* t : {"1", "true", "TRUE", "on", "Yes"})
        EXPECT_EQ(env::parse_bool(t), true) << t;
    for (const char* f : {"0", "false", "OFF", "no", "No"})
        EXPECT_EQ(env::parse_bool(f), false) << f;
    EXPECT_FALSE(env::parse_bool("").has_value());
    EXPECT_FALSE(env::parse_bool("maybe").has_value());
}

TEST(Env, ParseChoiceFindsExactMatchesOnly) {
    EXPECT_EQ(env::parse_choice("sparse", {"dense", "sparse", "auto"}), 1u);
    EXPECT_EQ(env::parse_choice("dense", {"dense", "sparse", "auto"}), 0u);
    EXPECT_FALSE(
        env::parse_choice("Sparse", {"dense", "sparse", "auto"}).has_value());
    EXPECT_FALSE(env::parse_choice("", {"dense", "sparse"}).has_value());
}

TEST(Env, TypedGettersLayerFallbacks) {
    ::setenv("TFETSRAM_TEST_KNOB", "17", 1);
    EXPECT_EQ(env::get_int("TFETSRAM_TEST_KNOB", 3), 17);
    EXPECT_EQ(env::get_string("TFETSRAM_TEST_KNOB", "d"), "17");
    ::setenv("TFETSRAM_TEST_KNOB", "", 1);
    EXPECT_EQ(env::get_int("TFETSRAM_TEST_KNOB", 3), 3);
    EXPECT_EQ(env::get_string("TFETSRAM_TEST_KNOB", "d"), "d");
    ::unsetenv("TFETSRAM_TEST_KNOB");
    EXPECT_EQ(env::get_int("TFETSRAM_TEST_KNOB", 3), 3);
    EXPECT_EQ(env::raw("TFETSRAM_TEST_KNOB"), nullptr);
}

TEST(Env, GetBoolArmsOnUnrecognizedNonEmptyText) {
    ::setenv("TFETSRAM_TEST_FLAG", "false", 1);
    EXPECT_FALSE(env::get_bool("TFETSRAM_TEST_FLAG", true));
    // Historical behavior: "TFETSRAM_KEEP_GOING=anything" arms the flag.
    ::setenv("TFETSRAM_TEST_FLAG", "anything", 1);
    EXPECT_TRUE(env::get_bool("TFETSRAM_TEST_FLAG", false));
    ::unsetenv("TFETSRAM_TEST_FLAG");
    EXPECT_TRUE(env::get_bool("TFETSRAM_TEST_FLAG", true));
    EXPECT_FALSE(env::get_bool("TFETSRAM_TEST_FLAG", false));
}

} // namespace
} // namespace tfetsram
