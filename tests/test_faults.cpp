// Fault-injection tests: the TFETSRAM_FAULTS spec grammar, the DC homotopy
// fallback chain under forced Newton failures, transient dt-underflow
// context, AC error propagation, Monte-Carlo retry/censoring, runner
// retry/quarantine, cache corruption tolerance, crash-safe artifact
// writes, and the thread-pool noexcept guard. Every failure-handling path
// in docs/ROBUSTNESS.md is executed here on purpose — recovery code that
// is never run is recovery code that does not work.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mc/monte_carlo.hpp"
#include "mc/statistics.hpp"
#include "runner/json.hpp"
#include "runner/runner.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "spice/transient.hpp"
#include "sram/designs.hpp"
#include "util/contracts.hpp"
#include "util/fault.hpp"

namespace tfetsram {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch dir per test case.
fs::path scratch(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("faults_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

runner::RunnerConfig runner_config(const std::string& name) {
    const fs::path dir = scratch(name);
    runner::RunnerConfig cfg;
    cfg.run_name = name;
    cfg.threads = 1;
    cfg.cache_mode = runner::CacheMode::kOff;
    cfg.cache_dir = dir / "cache";
    cfg.out_dir = dir / "out";
    cfg.print_summary = false;
    return cfg;
}

runner::TaskSpec task(std::string id, runner::TaskFn fn) {
    runner::TaskSpec spec;
    spec.id = std::move(id);
    spec.fn = std::move(fn);
    return spec;
}

/// Linear resistive divider: converges under plain Newton unless faulted.
spice::Circuit divider() {
    spice::Circuit c;
    const spice::NodeId in = c.add_node("in");
    const spice::NodeId mid = c.add_node("mid");
    c.add_vsource("V1", in, spice::kGround, spice::Waveform::dc(1.0));
    c.add_resistor("R1", in, mid, 1e3);
    c.add_resistor("R2", mid, spice::kGround, 1e3);
    return c;
}

// ------------------------------------------------------------ spec grammar

TEST(FaultPlan, IndexListFiresExactlyThere) {
    const auto plan = fault::FaultPlan::parse("newton@0,3");
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(plan.fires(fault::Site::kNewton, 0));
    EXPECT_FALSE(plan.fires(fault::Site::kNewton, 1));
    EXPECT_FALSE(plan.fires(fault::Site::kNewton, 2));
    EXPECT_TRUE(plan.fires(fault::Site::kNewton, 3));
    EXPECT_FALSE(plan.fires(fault::Site::kNewton, 4));
    // Other sites are untouched.
    EXPECT_FALSE(plan.fires(fault::Site::kDcSolve, 0));
}

TEST(FaultPlan, EverySelector) {
    const auto plan = fault::FaultPlan::parse("dc@every:3");
    EXPECT_TRUE(plan.fires(fault::Site::kDcSolve, 0));
    EXPECT_FALSE(plan.fires(fault::Site::kDcSolve, 1));
    EXPECT_FALSE(plan.fires(fault::Site::kDcSolve, 2));
    EXPECT_TRUE(plan.fires(fault::Site::kDcSolve, 3));
    EXPECT_TRUE(plan.fires(fault::Site::kDcSolve, 6));
}

TEST(FaultPlan, FromSelector) {
    const auto plan = fault::FaultPlan::parse("cache_load@from:2");
    EXPECT_FALSE(plan.fires(fault::Site::kCacheLoad, 0));
    EXPECT_FALSE(plan.fires(fault::Site::kCacheLoad, 1));
    EXPECT_TRUE(plan.fires(fault::Site::kCacheLoad, 2));
    EXPECT_TRUE(plan.fires(fault::Site::kCacheLoad, 1000));
}

TEST(FaultPlan, ProbabilitySelectorIsSeededAndDeterministic) {
    const auto a = fault::FaultPlan::parse("newton@p:0.5:7");
    const auto b = fault::FaultPlan::parse("newton@p:0.5:7");
    std::size_t fired = 0;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        EXPECT_EQ(a.fires(fault::Site::kNewton, i),
                  b.fires(fault::Site::kNewton, i));
        fired += a.fires(fault::Site::kNewton, i) ? 1 : 0;
    }
    // An unbiased p=0.5 Bernoulli over 2000 draws lands well inside this.
    EXPECT_GT(fired, 800u);
    EXPECT_LT(fired, 1200u);
}

TEST(FaultPlan, MultipleClausesAreIndependent) {
    const auto plan = fault::FaultPlan::parse("newton@1;dc@0");
    EXPECT_FALSE(plan.fires(fault::Site::kNewton, 0));
    EXPECT_TRUE(plan.fires(fault::Site::kNewton, 1));
    EXPECT_TRUE(plan.fires(fault::Site::kDcSolve, 0));
    EXPECT_FALSE(plan.fires(fault::Site::kDcSolve, 1));
    EXPECT_FALSE(plan.fires(fault::Site::kCacheStore, 0));
}

TEST(FaultPlan, EmptySpecNeverFires) {
    const fault::FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_FALSE(plan.fires(fault::Site::kNewton, 0));
}

TEST(FaultPlan, MalformedSpecsThrowContractViolation) {
    EXPECT_THROW(fault::FaultPlan::parse("bogus@0"), contract_violation);
    EXPECT_THROW(fault::FaultPlan::parse("newton"), contract_violation);
    EXPECT_THROW(fault::FaultPlan::parse("newton@"), contract_violation);
    EXPECT_THROW(fault::FaultPlan::parse("newton@every:0"),
                 contract_violation);
    EXPECT_THROW(fault::FaultPlan::parse("newton@every:abc"),
                 contract_violation);
    EXPECT_THROW(fault::FaultPlan::parse("newton@p:2.0:1"),
                 contract_violation);
    EXPECT_THROW(fault::FaultPlan::parse("newton@p:0.5"),
                 contract_violation);
    EXPECT_THROW(fault::FaultPlan::parse("newton@1x"), contract_violation);
}

TEST(FaultInjector, ScopedArmCountsOpsAndRestores) {
    {
        fault::ScopedFaultInjection inject("newton@1");
        EXPECT_EQ(fault::op_count(fault::Site::kNewton), 0u);
        EXPECT_FALSE(fault::should_fail(fault::Site::kNewton)); // index 0
        EXPECT_TRUE(fault::should_fail(fault::Site::kNewton));  // index 1
        EXPECT_FALSE(fault::should_fail(fault::Site::kNewton)); // index 2
        EXPECT_EQ(fault::op_count(fault::Site::kNewton), 3u);
        EXPECT_EQ(fault::op_count(fault::Site::kDcSolve), 0u);
    }
    // Plan restored (disarmed): hooks never fire and never count.
    EXPECT_FALSE(fault::should_fail(fault::Site::kNewton));
}

TEST(FaultInjector, ReloadFromEnvArmsAndDisarms) {
    ::setenv("TFETSRAM_FAULTS", "cache_store@0", 1);
    fault::reload_from_env();
    EXPECT_TRUE(fault::should_fail(fault::Site::kCacheStore));  // index 0
    EXPECT_FALSE(fault::should_fail(fault::Site::kCacheStore)); // index 1
    ::unsetenv("TFETSRAM_FAULTS");
    fault::reload_from_env();
    EXPECT_FALSE(fault::should_fail(fault::Site::kCacheStore));
}

// ------------------------------------------------- DC fallback chain

TEST(DcFallback, CleanSolveUsesPlainNewton) {
    spice::Circuit c = divider();
    const spice::DcResult r = spice::solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.strategy, "newton");
    ASSERT_EQ(r.attempts.size(), 1u);
    EXPECT_EQ(r.attempts[0].name, "newton");
    EXPECT_TRUE(r.attempts[0].converged);
    EXPECT_LT(r.attempts[0].residual, 1e-6);
    EXPECT_FALSE(r.error.has_value());
}

TEST(DcFallback, NewtonFailureFallsBackToGminStepping) {
    spice::Circuit c = divider();
    fault::ScopedFaultInjection inject("newton@0");
    const spice::DcResult r = spice::solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.strategy, "gmin-stepping");
    ASSERT_EQ(r.attempts.size(), 2u);
    EXPECT_EQ(r.attempts[0].name, "newton");
    EXPECT_FALSE(r.attempts[0].converged);
    EXPECT_EQ(r.attempts[1].name, "gmin-stepping");
    EXPECT_TRUE(r.attempts[1].converged);
    EXPECT_FALSE(r.error.has_value());
    // The solution is still the right one: mid node divides 1 V in half.
    EXPECT_NEAR(spice::node_voltage(r.x, 2), 0.5, 1e-6);
}

TEST(DcFallback, GminFailureFallsBackToSourceStepping) {
    spice::Circuit c = divider();
    // Kill plain Newton (call 0) and the first gmin stage (call 1).
    fault::ScopedFaultInjection inject("newton@0,1");
    const spice::DcResult r = spice::solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.strategy, "source-stepping");
    ASSERT_EQ(r.attempts.size(), 3u);
    EXPECT_FALSE(r.attempts[0].converged);
    EXPECT_FALSE(r.attempts[1].converged);
    EXPECT_EQ(r.attempts[2].name, "source-stepping");
    EXPECT_TRUE(r.attempts[2].converged);
    EXPECT_NEAR(spice::node_voltage(r.x, 2), 0.5, 1e-6);
}

TEST(DcFallback, ExhaustionReportsStructuredError) {
    spice::Circuit c = divider();
    fault::ScopedFaultInjection inject("newton@every:1");
    const spice::DcResult r = spice::solve_dc(c, {});
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.strategy, "failed");
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->code, spice::SolveErrorCode::kNonConvergence);
    ASSERT_EQ(r.error->strategies.size(), 3u);
    EXPECT_EQ(r.error->strategies[0].name, "newton");
    EXPECT_EQ(r.error->strategies[1].name, "gmin-stepping");
    EXPECT_EQ(r.error->strategies[2].name, "source-stepping");
    for (const auto& s : r.error->strategies)
        EXPECT_FALSE(s.converged);
    EXPECT_EQ(r.error->last_iterate.size(), r.x.size());
    // describe() renders code, message, and the chain in one line.
    const std::string text = r.error->describe();
    EXPECT_NE(text.find("non-convergence"), std::string::npos);
    EXPECT_NE(text.find("gmin-stepping"), std::string::npos);
}

TEST(DcFallback, InjectedDcFaultShortCircuitsTheChain) {
    spice::Circuit c = divider();
    fault::ScopedFaultInjection inject("dc@0");
    const spice::DcResult r = spice::solve_dc(c, {});
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.strategy, "failed");
    EXPECT_TRUE(r.attempts.empty()); // no strategy ever ran
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->code, spice::SolveErrorCode::kInjectedFault);
}

// ------------------------------------------------- transient failure state

TEST(TransientFaults, MidRunFailureKeepsTimeReachedAndLastState) {
    spice::Circuit c;
    const spice::NodeId in = c.add_node("in");
    const spice::NodeId out = c.add_node("out");
    c.add_vsource("V1", in, spice::kGround, spice::Waveform::dc(1.0));
    c.add_resistor("R1", in, out, 1e3);
    c.add_capacitor("C1", out, spice::kGround, 1e-9);
    // Newton call 0 is the t=0 operating point; calls 1..3 are accepted
    // steps; from call 4 on every solve fails, so dt collapses below
    // dt_min mid-run.
    fault::ScopedFaultInjection inject("newton@from:4");
    const spice::TransientResult r = spice::solve_transient(c, {}, 1e-9);
    EXPECT_FALSE(r.completed);
    EXPECT_GT(r.time_reached, 0.0);
    EXPECT_LT(r.time_reached, 1e-9);
    ASSERT_TRUE(r.has_state());
    EXPECT_EQ(r.last_state().size(), c.num_unknowns());
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->code, spice::SolveErrorCode::kDtUnderflow);
    EXPECT_DOUBLE_EQ(r.error->time, r.time_reached);
    EXPECT_NE(r.message.find("dt below dt_min"), std::string::npos);
    EXPECT_NE(r.message.find("% of t_end"), std::string::npos);
}

TEST(TransientFaults, OperatingPointFailurePropagatesDcError) {
    spice::Circuit c = divider();
    fault::ScopedFaultInjection inject("dc@0");
    const spice::TransientResult r = spice::solve_transient(c, {}, 1e-9);
    EXPECT_FALSE(r.completed);
    EXPECT_DOUBLE_EQ(r.time_reached, 0.0);
    EXPECT_FALSE(r.has_state());
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->code, spice::SolveErrorCode::kInjectedFault);
}

// ------------------------------------------------- AC error propagation

TEST(AcFaults, FailedOperatingPointCarriesStructuredError) {
    spice::Circuit c;
    const spice::NodeId in = c.add_node("in");
    const spice::NodeId out = c.add_node("out");
    auto& vin = c.add_vsource("V", in, spice::kGround,
                              spice::Waveform::dc(0.0));
    c.add_resistor("R", in, out, 1e3);
    c.add_capacitor("C", out, spice::kGround, 1e-12);
    fault::ScopedFaultInjection inject("dc@0");
    const spice::AcResult r =
        spice::solve_ac(c, {}, {&vin, 1.0}, 1e6, 1e8, 3);
    EXPECT_FALSE(r.ok);
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->code, spice::SolveErrorCode::kInjectedFault);
    EXPECT_NE(r.message.find("operating point"), std::string::npos);
}

// ------------------------------------------------- Monte-Carlo censoring

spice::SolveException forced_failure() {
    spice::SolveError err;
    err.code = spice::SolveErrorCode::kNonConvergence;
    err.message = "forced by test";
    return spice::SolveException(std::move(err));
}

mc::VariationSpec coarse_spec() {
    mc::VariationSpec s;
    s.table_spec.points = 121; // coarse tables keep these tests quick
    return s;
}

TEST(McCensoring, AllAttemptsFailingCensorsTheSample) {
    const sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    const mc::TfetVariationSampler sampler(coarse_spec());
    std::atomic<int> calls{0};
    std::vector<std::pair<int, std::size_t>> reseeds;
    mc::McPolicy policy;
    policy.max_attempts = 2;
    policy.reseed = [&](sram::CellConfig&, int attempt, std::size_t i) {
        reseeds.emplace_back(attempt, i);
    };
    const mc::McResult res = mc::run_monte_carlo(
        cfg, sampler, 4, 7,
        [&](sram::SramCell&) -> double {
            ++calls;
            throw forced_failure();
        },
        /*threads=*/1, policy);
    EXPECT_EQ(calls.load(), 8); // 4 samples x 2 attempts
    EXPECT_EQ(res.n_censored, 4u);
    EXPECT_EQ(res.n_retried, 4u);
    ASSERT_EQ(res.samples.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_TRUE(std::isnan(res.samples[i])) << "i=" << i;
        EXPECT_EQ(res.censored[i], 1) << "i=" << i;
    }
    EXPECT_EQ(res.summary.count, 0u); // censored slots stay out of moments
    // The reseed hook ran once per sample, on the retry attempt.
    ASSERT_EQ(reseeds.size(), 4u);
    for (const auto& [attempt, index] : reseeds)
        EXPECT_EQ(attempt, 2) << "sample " << index;
}

TEST(McCensoring, RetryRecoversWithoutCensoring) {
    const sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    const mc::TfetVariationSampler sampler(coarse_spec());
    // Serial execution evaluates each sample's attempts back to back, so
    // alternating throw/succeed fails exactly the first attempt of every
    // sample.
    int call = 0;
    mc::McPolicy policy;
    policy.max_attempts = 3;
    const mc::McResult res = mc::run_monte_carlo(
        cfg, sampler, 4, 7,
        [&](sram::SramCell&) -> double {
            if (call++ % 2 == 0)
                throw forced_failure();
            return 1.0;
        },
        /*threads=*/1, policy);
    EXPECT_EQ(res.n_censored, 0u);
    EXPECT_EQ(res.n_retried, 4u);
    EXPECT_EQ(res.summary.count, 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(res.samples[i], 1.0);
        EXPECT_EQ(res.censored[i], 0);
    }
}

TEST(McCensoring, NoFaultMeansNoRetries) {
    const sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    const mc::TfetVariationSampler sampler(coarse_spec());
    const mc::McResult res = mc::run_monte_carlo(
        cfg, sampler, 4, 7,
        [](sram::SramCell& cell) { return cell.config.vdd; }, 1);
    EXPECT_EQ(res.n_censored, 0u);
    EXPECT_EQ(res.n_retried, 0u);
    EXPECT_EQ(res.summary.count, 4u);
}

TEST(CensoredYield, ReducesToPlainIntervalWithoutCensoring) {
    const mc::YieldInterval plain = mc::yield_interval(8, 10);
    const mc::YieldInterval cens = mc::censored_yield_interval(8, 10, 0);
    EXPECT_DOUBLE_EQ(cens.point, plain.point);
    EXPECT_DOUBLE_EQ(cens.lower, plain.lower);
    EXPECT_DOUBLE_EQ(cens.upper, plain.upper);
}

TEST(CensoredYield, WorstCaseImputationWidensBothSides) {
    const mc::YieldInterval plain = mc::yield_interval(8, 10);
    const mc::YieldInterval cens = mc::censored_yield_interval(8, 10, 5);
    EXPECT_DOUBLE_EQ(cens.point, 0.8); // passes / evaluated
    // Lower bound assumes all 5 censored samples fail; upper that all pass.
    EXPECT_DOUBLE_EQ(cens.lower, mc::yield_interval(8, 15).lower);
    EXPECT_DOUBLE_EQ(cens.upper, mc::yield_interval(13, 15).upper);
    EXPECT_LT(cens.lower, plain.lower);
    EXPECT_GT(cens.upper - cens.lower, plain.upper - plain.lower);
    // More censoring, wider interval.
    const mc::YieldInterval more = mc::censored_yield_interval(8, 10, 10);
    EXPECT_LT(more.lower, cens.lower);
    EXPECT_GE(more.upper, cens.upper);
}

TEST(CensoredYield, AllCensoredIsVacuousNotFatal) {
    // Every sample censored: no information, so the interval must be the
    // vacuous [0, 1] (NaN point estimate) rather than a contract violation —
    // a fully degraded MC batch still yields a reportable (if useless) bound.
    const mc::YieldInterval vac = mc::censored_yield_interval(0, 0, 5);
    EXPECT_TRUE(std::isnan(vac.point));
    EXPECT_LT(vac.lower, 0.05);
    EXPECT_GT(vac.upper, 0.95);
}

// ------------------------------------------------- runner retry/quarantine

TEST(RunnerRetry, FlakyTaskSucceedsWithinBudget) {
    runner::RunnerConfig cfg = runner_config("retry");
    runner::Runner r(cfg);
    std::atomic<int> calls{0};
    std::vector<int> retry_attempts;
    runner::TaskSpec spec = task("flaky", [&]() -> runner::TaskResult {
        if (++calls < 3)
            throw std::runtime_error("transient blip");
        runner::TaskResult res;
        res.set("v", "ok");
        return res;
    });
    spec.max_attempts = 3;
    spec.on_retry = [&](int attempt) { retry_attempts.push_back(attempt); };
    const runner::TaskId id = r.add(std::move(spec));
    const runner::RunSummary summary = r.run();
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(summary.executed, 1u);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_EQ(summary.quarantined, 0u);
    EXPECT_FALSE(summary.degraded());
    EXPECT_EQ(r.status(id), runner::TaskStatus::kExecuted);
    EXPECT_EQ(r.error(id), nullptr);
    EXPECT_EQ(r.result(id).get("v"), "ok");
    ASSERT_EQ(retry_attempts.size(), 2u);
    EXPECT_EQ(retry_attempts[0], 2);
    EXPECT_EQ(retry_attempts[1], 3);
    // The journal records the attempts spent.
    const std::string journal =
        slurp(cfg.out_dir / (cfg.run_name + "_journal.jsonl"));
    EXPECT_NE(journal.find("\"attempts\":3"), std::string::npos);
}

TEST(RunnerRetry, DefaultMaxAttemptsComesFromConfig) {
    runner::RunnerConfig cfg = runner_config("retry_default");
    cfg.default_max_attempts = 2;
    cfg.keep_going = true;
    runner::Runner r(cfg);
    std::atomic<int> calls{0};
    const runner::TaskId id = r.add(task("doomed", [&]() -> runner::TaskResult {
        ++calls;
        throw std::runtime_error("always fails");
    }));
    r.run();
    EXPECT_EQ(calls.load(), 2); // config-level attempts applied
    ASSERT_NE(r.error(id), nullptr);
    EXPECT_EQ(r.error(id)->attempts(), 2);
}

TEST(RunnerQuarantine, KeepGoingCompletesGraphAndPoisonsDependents) {
    runner::RunnerConfig cfg = runner_config("quarantine");
    cfg.keep_going = true;
    runner::Runner r(cfg);
    const runner::TaskId bad = r.add(task("bad", []() -> runner::TaskResult {
        throw std::runtime_error("boom");
    }));
    runner::TaskSpec child_spec = task("child", []() -> runner::TaskResult {
        return {};
    });
    child_spec.deps = {bad};
    const runner::TaskId child = r.add(std::move(child_spec));
    std::atomic<bool> indep_ran{false};
    const runner::TaskId indep =
        r.add(task("indep", [&]() -> runner::TaskResult {
            indep_ran = true;
            runner::TaskResult res;
            res.set("v", "done");
            return res;
        }));

    const runner::RunSummary summary = r.run(); // must not throw
    EXPECT_TRUE(indep_ran.load());
    EXPECT_EQ(summary.quarantined, 2u);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_EQ(summary.executed, 1u);
    EXPECT_TRUE(summary.degraded());

    EXPECT_EQ(r.status(bad), runner::TaskStatus::kQuarantined);
    ASSERT_NE(r.error(bad), nullptr);
    EXPECT_EQ(r.error(bad)->task_id(), "bad");
    EXPECT_NE(r.error(bad)->cause().find("boom"), std::string::npos);

    EXPECT_EQ(r.status(child), runner::TaskStatus::kQuarantined);
    ASSERT_NE(r.error(child), nullptr);
    EXPECT_NE(r.error(child)->cause().find("upstream dependency 'bad'"),
              std::string::npos);

    EXPECT_EQ(r.status(indep), runner::TaskStatus::kExecuted);
    EXPECT_EQ(r.error(indep), nullptr);
    EXPECT_EQ(r.result(indep).get("v"), "done");

    // Journal carries the quarantine status and the error context.
    const std::string journal =
        slurp(cfg.out_dir / (cfg.run_name + "_journal.jsonl"));
    EXPECT_NE(journal.find("\"cache\":\"quarantined\""), std::string::npos);
    EXPECT_NE(journal.find("boom"), std::string::npos);
    EXPECT_NE(journal.find("upstream dependency"), std::string::npos);

    // The BENCH artifact marks the run degraded, machine-readably.
    const auto bench = runner::Json::parse(
        slurp(cfg.out_dir / ("BENCH_" + cfg.run_name + ".json")));
    ASSERT_TRUE(bench.has_value());
    ASSERT_NE(bench->find("degraded"), nullptr);
    EXPECT_TRUE(bench->find("degraded")->as_bool());
    ASSERT_NE(bench->find("quarantined"), nullptr);
    EXPECT_DOUBLE_EQ(bench->find("quarantined")->as_number(), 2.0);
}

TEST(RunnerQuarantine, SolveExceptionContextIsPreserved) {
    runner::RunnerConfig cfg = runner_config("quarantine_solve");
    cfg.keep_going = true;
    runner::Runner r(cfg);
    const runner::TaskId id =
        r.add(task("sweep_pt", []() -> runner::TaskResult {
            throw forced_failure();
        }));
    r.run();
    ASSERT_NE(r.error(id), nullptr);
    ASSERT_TRUE(r.error(id)->solve_error().has_value());
    EXPECT_EQ(r.error(id)->solve_error()->code,
              spice::SolveErrorCode::kNonConvergence);
}

TEST(RunnerAbort, OriginalExceptionTypeSurvivesWithoutKeepGoing) {
    runner::Runner r(runner_config("abort"));
    r.add(task("bad", []() -> runner::TaskResult {
        throw forced_failure();
    }));
    EXPECT_THROW(r.run(), spice::SolveException);
}

// ------------------------------------------------- cache fault tolerance

TEST(CacheFaults, InjectedLoadCorruptionIsJustAMiss) {
    const fs::path dir = scratch("cache_load");
    const runner::ResultCache cache(dir, runner::CacheMode::kReadWrite);
    runner::CacheKey key("unit");
    key.add("x", 1.0);
    runner::TaskResult res;
    res.set("v", "42");
    ASSERT_TRUE(cache.store(key, res));
    {
        fault::ScopedFaultInjection inject("cache_load@0");
        EXPECT_FALSE(cache.load(key).has_value()); // corrupt read -> miss
    }
    const auto hit = cache.load(key); // entry itself is intact
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->get("v"), "42");
}

TEST(CacheFaults, InjectedStoreFailureIsNonFatal) {
    const fs::path dir = scratch("cache_store");
    const runner::ResultCache cache(dir, runner::CacheMode::kReadWrite);
    runner::CacheKey key("unit");
    key.add("x", 2.0);
    runner::TaskResult res;
    res.set("v", "43");
    {
        fault::ScopedFaultInjection inject("cache_store@0");
        EXPECT_FALSE(cache.store(key, res));
    }
    EXPECT_FALSE(cache.load(key).has_value()); // nothing was persisted
    EXPECT_TRUE(cache.store(key, res));        // and the cache still works
    ASSERT_TRUE(cache.load(key).has_value());
}

// ------------------------------------------------- crash-safe file writes

TEST(FileWriteFaults, AtomicWriteFailsCleanly) {
    const fs::path dir = scratch("atomic_write");
    const fs::path target = dir / "artifact.json";
    {
        fault::ScopedFaultInjection inject("file_write@0");
        EXPECT_FALSE(runner::atomic_write(target, "{}"));
        EXPECT_FALSE(fs::exists(target)); // no partial artifact
    }
    EXPECT_TRUE(runner::atomic_write(target, "{\"ok\":true}"));
    EXPECT_EQ(slurp(target), "{\"ok\":true}");
    // Overwrites go through a temp + rename and leave no debris behind.
    EXPECT_TRUE(runner::atomic_write(target, "v2"));
    EXPECT_EQ(slurp(target), "v2");
    std::size_t entries = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir))
        ++entries;
    EXPECT_EQ(entries, 1u);
}

// ------------------------------------------------- thread-pool guard

TEST(ThreadPoolDeathTest, ThrowingJobTerminatesWithContext) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            runner::ThreadPool pool(1);
            pool.submit([] { throw std::runtime_error("kaput"); },
                        "exploding_job");
            pool.wait_idle();
        },
        "job 'exploding_job'.*must not throw");
}

} // namespace
} // namespace tfetsram
