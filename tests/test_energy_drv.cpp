// Tests for the dynamic-energy and data-retention-voltage extensions.

#include <gtest/gtest.h>

#include <cmath>

#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "spice/report.hpp"
#include "spice/transient.hpp"

namespace tfetsram::sram {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

TEST(SourceEnergy, RcChargeEnergyMatchesTheory) {
    // Charging C to V through R draws E = C V^2 from the source
    // (half stored, half burned in R).
    spice::Circuit ckt;
    const auto in = ckt.add_node("in");
    const auto out = ckt.add_node("out");
    ckt.add_vsource("V", in, spice::kGround,
                    spice::Waveform::pwl({{1e-10, 0.0}, {1.2e-10, 1.0}}));
    ckt.add_resistor("R", in, out, 1e3);
    ckt.add_capacitor("C", out, spice::kGround, 1e-12);
    const spice::TransientResult tr = spice::solve_transient(ckt, {}, 10e-9);
    ASSERT_TRUE(tr.completed) << tr.message;
    const double e = spice::source_energy(ckt, tr, 0.0, 10e-9);
    EXPECT_NEAR(e, 1e-12 * 1.0 * 1.0, 0.1e-12);
}

TEST(SourceEnergy, QuiescentWindowDrawsAlmostNothing) {
    SramCell cell = build_cell(proposed_design(0.8, models()).config);
    program_hold(cell);
    const HoldState hs = solve_hold_state(cell, true, {});
    ASSERT_TRUE(hs.state_ok);
    const spice::TransientResult tr =
        spice::solve_transient(cell.circuit, {}, 1e-9, nullptr, &hs.x);
    ASSERT_TRUE(tr.completed);
    const double e = spice::source_energy(cell.circuit, tr, 0.1e-9, 1e-9);
    // Leakage watts times a nanosecond plus gmin artifacts: < 1 fJ easily.
    EXPECT_LT(std::fabs(e), 1e-15);
}

TEST(Energy, WriteCostsFemtojoules) {
    SramCell cell = build_cell(proposed_design(0.8, models()).config);
    const double e = write_energy(cell, 300e-12, Assist::kNone);
    ASSERT_FALSE(std::isnan(e));
    EXPECT_GT(e, 1e-17);
    EXPECT_LT(e, 1e-13);
}

TEST(Energy, AssistAddsMeasurableOverhead) {
    // Sec. 4.3: "There is dynamic power overhead to generate lowered GND".
    SramCell cell = build_cell(proposed_design(0.8, models()).config);
    const double e_bare = read_energy(cell, Assist::kNone);
    const double e_assist = read_energy(cell, Assist::kRaGndLowering);
    ASSERT_FALSE(std::isnan(e_bare));
    ASSERT_FALSE(std::isnan(e_assist));
    EXPECT_GT(e_assist, e_bare);
}

TEST(Drv, TfetCellRetainsWellBelowHalfVdd) {
    const double drv =
        data_retention_voltage(proposed_design(0.8, models()).config);
    ASSERT_FALSE(std::isnan(drv));
    EXPECT_LT(drv, 0.4);
    EXPECT_GT(drv, 0.02);
}

TEST(Drv, CmosCellHasFiniteDrv) {
    const double drv =
        data_retention_voltage(cmos_design(0.8, models()).config);
    ASSERT_FALSE(std::isnan(drv));
    EXPECT_LT(drv, 0.5);
}

TEST(Drv, MonotoneSanity) {
    // Retention at the reported DRV + margin must hold; below it must not.
    const CellConfig cfg = proposed_design(0.8, models()).config;
    const double drv = data_retention_voltage(cfg);
    ASSERT_FALSE(std::isnan(drv));

    CellConfig above = cfg;
    above.vdd = drv + 0.05;
    SramCell cell_above = build_cell(above);
    program_hold(cell_above);
    EXPECT_TRUE(solve_hold_state(cell_above, true, {}).state_ok);
}

} // namespace
} // namespace tfetsram::sram
