// SimContext tests: deterministic seed derivation, env-snapshot layering,
// with_options views, legacy-shim attribution, context-vs-global solver
// policy, per-task isolation when concurrent runner tasks pin conflicting
// backends, and the Monte-Carlo inner-pool attribution regression (a
// task's journal record must cover work its MC pool did on other threads).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include "mc/monte_carlo.hpp"
#include "runner/json.hpp"
#include "runner/runner.hpp"
#include "spice/circuit.hpp"
#include "spice/context.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"
#include "util/contracts.hpp"
#include "util/env.hpp"

namespace tfetsram {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch dir per test case.
fs::path scratch(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("ctx_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// Linear resistor ladder: converges in one Newton sweep on either
/// kernel, so per-task counter totals are exact and deterministic.
spice::Circuit make_ladder(std::size_t sections) {
    spice::Circuit c;
    spice::NodeId prev = c.add_node("in");
    c.add_vsource("V", prev, spice::kGround, spice::Waveform::dc(1.0));
    for (std::size_t i = 0; i < sections; ++i) {
        const spice::NodeId n = c.add_node("n" + std::to_string(i));
        c.add_resistor("Rs" + std::to_string(i), prev, n, 1e3);
        c.add_resistor("Rg" + std::to_string(i), n, spice::kGround, 2e3);
        prev = n;
    }
    return c;
}

// ------------------------------------------------------------------ seeds

TEST(ContextSeeds, DerivationIsDeterministicPerStream) {
    spice::SimConfig cfg;
    cfg.seed = 0x1234;
    const spice::SimContext a(cfg);
    const spice::SimContext b(cfg);
    for (std::uint64_t s = 0; s < 8; ++s) {
        EXPECT_EQ(a.derive_seed(s), b.derive_seed(s));
        EXPECT_EQ(a.child(s).seed(), a.derive_seed(s));
    }
    // Streams decorrelate, and so do different roots.
    EXPECT_NE(a.derive_seed(0), a.derive_seed(1));
    cfg.seed = 0x1235;
    const spice::SimContext c(cfg);
    EXPECT_NE(a.derive_seed(0), c.derive_seed(0));
}

TEST(ContextSeeds, ChildStartsWithZeroedStats) {
    spice::SimConfig cfg;
    const spice::SimContext parent(cfg);
    {
        const spice::ScopedContext bind(parent);
        spice::Circuit ckt = make_ladder(4);
        ASSERT_TRUE(spice::solve_dc(ckt, parent.options()).converged);
    }
    EXPECT_GT(parent.stats().dc_solves, 0u);
    const spice::SimContext kid = parent.child(7);
    EXPECT_EQ(kid.stats().dc_solves, 0u);
    EXPECT_EQ(kid.stats().nr_iterations, 0u);
}

// ------------------------------------------------------------ env layering

TEST(ContextConfig, FromEmptySnapshotKeepsBuiltInDefaults) {
    const env::EnvSnapshot snap{};
    const spice::SimConfig cfg = spice::SimConfig::from_env(snap);
    EXPECT_FALSE(cfg.mode.has_value());
    EXPECT_EQ(cfg.seed, spice::SimConfig{}.seed);
    EXPECT_EQ(cfg.out_dir, fs::path("bench_csv"));
    EXPECT_EQ(cfg.cache_dir, fs::path(".tfetsram_cache"));
    EXPECT_TRUE(cfg.fault_spec.empty());
}

TEST(ContextConfig, FromSnapshotLayersEverySetKnob) {
    env::EnvSnapshot snap{};
    snap.solver = "sparse";
    snap.seed = 123;
    snap.out_dir = "o";
    snap.cache_dir = "c";
    const spice::SimConfig cfg = spice::SimConfig::from_env(snap);
    ASSERT_TRUE(cfg.mode.has_value());
    EXPECT_EQ(*cfg.mode, spice::SolverMode::kSparse);
    EXPECT_EQ(cfg.seed, 123u);
    EXPECT_EQ(cfg.out_dir, fs::path("o"));
    EXPECT_EQ(cfg.cache_dir, fs::path("c"));

    snap.solver = "dense";
    ASSERT_TRUE(spice::SimConfig::from_env(snap).mode.has_value());
    EXPECT_EQ(*spice::SimConfig::from_env(snap).mode,
              spice::SolverMode::kDense);
}

// ------------------------------------------------------------------- views

TEST(ContextViews, WithOptionsSharesTheParentStatsSink) {
    spice::SimConfig cfg;
    const spice::SimContext ctx(cfg);
    spice::SolverOptions loose;
    loose.vntol = 5e-4;
    const spice::SimContext view = ctx.with_options(loose);
    EXPECT_EQ(&view.stats(), &ctx.stats());
    EXPECT_DOUBLE_EQ(view.options().vntol, 5e-4);

    const spice::ScopedContext bind(view);
    spice::Circuit ckt = make_ladder(4);
    ASSERT_TRUE(spice::solve_dc(ckt, view.options()).converged);
    EXPECT_GT(ctx.stats().dc_solves, 0u);
}

// ------------------------------------------------------------ legacy shims

TEST(ContextShims, LegacySolveAttributesToTheBoundContext) {
    spice::SimConfig cfg;
    const spice::SimContext ctx(cfg);
    spice::Circuit ckt = make_ladder(6);
    {
        const spice::ScopedContext bind(ctx);
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(spice::solve_dc(ckt, {}).converged);
        // The thread-local stats view is the bound context's sink.
        EXPECT_EQ(spice::solver_stats().dc_solves, ctx.stats().dc_solves);
    }
    EXPECT_EQ(ctx.stats().dc_solves, 3u);
    // Outside the binding, new work lands on the per-thread default
    // context, not on ctx.
    ASSERT_TRUE(spice::solve_dc(ckt, {}).converged);
    EXPECT_EQ(ctx.stats().dc_solves, 3u);
}

// ------------------------------------------------------------- mode policy

TEST(ContextModes, ExplicitModeIgnoresProcessWideOverride) {
    spice::SimConfig cfg;
    cfg.mode = spice::SolverMode::kDense;
    const spice::SimContext pinned(cfg);
    const spice::ScopedSolverMode force(spice::SolverMode::kSparse);
    // The pinned context is isolated from the global override...
    EXPECT_EQ(pinned.select_kind(5000), spice::SolverKind::kDense);
    // ...while a mode-less context keeps tracking the live policy, which
    // is what keeps ScopedSolverMode working for unported call sites.
    spice::SimConfig open;
    const spice::SimContext tracking(open);
    EXPECT_EQ(tracking.select_kind(2), spice::SolverKind::kSparse);
}

// ------------------------------------------- concurrent per-task isolation

TEST(ContextIsolation, ConcurrentTasksKeepConflictingPoliciesApart) {
    const fs::path dir = scratch("isolation");
    runner::RunnerConfig cfg;
    cfg.run_name = "isolation";
    cfg.threads = 2;
    cfg.cache_mode = runner::CacheMode::kOff;
    cfg.cache_dir = dir / "cache";
    cfg.out_dir = dir / "out";
    cfg.print_summary = false;

    struct Observed {
        std::optional<spice::SolverKind> kind;
        std::uint64_t dc_solves = 0;
        double vntol = 0.0;
        double v_mid = 0.0;
    };
    Observed dense_seen;
    Observed sparse_seen;
    // Rendezvous so the two tasks genuinely overlap (this test runs in
    // ci.sh's TSan lane); bounded so a sequential schedule can't hang it.
    std::atomic<int> started{0};
    const auto rendezvous = [&started] {
        started.fetch_add(1);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (started.load() < 2 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::yield();
    };
    const auto workload = [&rendezvous](Observed& out, std::size_t solves) {
        rendezvous();
        spice::Circuit ckt = make_ladder(12);
        for (std::size_t i = 0; i < solves; ++i) {
            const spice::DcResult r =
                spice::solve_dc(ckt, spice::ambient_context().options());
            TFET_ASSERT(r.converged);
            out.v_mid = spice::node_voltage(r.x, ckt.node("n5"));
        }
        out.kind = ckt.workspace().kind;
        out.dc_solves = spice::ambient_context().stats().dc_solves;
        out.vntol = spice::ambient_context().options().vntol;
        return runner::TaskResult{};
    };

    runner::Runner r(cfg);
    {
        runner::TaskSpec spec;
        spec.id = "dense_task";
        spec.fn = [&] { return workload(dense_seen, 5); };
        spice::SimConfig sim;
        sim.mode = spice::SolverMode::kDense;
        sim.options.vntol = 1e-7;
        spec.sim = sim;
        r.add(std::move(spec));
    }
    {
        runner::TaskSpec spec;
        spec.id = "sparse_task";
        spec.fn = [&] { return workload(sparse_seen, 9); };
        spice::SimConfig sim;
        sim.mode = spice::SolverMode::kSparse;
        sim.options.vntol = 2e-6;
        spec.sim = sim;
        r.add(std::move(spec));
    }
    const runner::RunSummary summary = r.run();

    // Each task saw exactly its own backend, tolerances, and counters —
    // a fresh per-task context means raw totals are the task's delta.
    ASSERT_TRUE(dense_seen.kind.has_value());
    EXPECT_EQ(*dense_seen.kind, spice::SolverKind::kDense);
    EXPECT_EQ(dense_seen.dc_solves, 5u);
    EXPECT_DOUBLE_EQ(dense_seen.vntol, 1e-7);
    ASSERT_TRUE(sparse_seen.kind.has_value());
    EXPECT_EQ(*sparse_seen.kind, spice::SolverKind::kSparse);
    EXPECT_EQ(sparse_seen.dc_solves, 9u);
    EXPECT_DOUBLE_EQ(sparse_seen.vntol, 2e-6);
    // Same physics on both kernels.
    EXPECT_NEAR(dense_seen.v_mid, sparse_seen.v_mid, 1e-9);
    // The run summary aggregates the per-task sinks.
    EXPECT_EQ(summary.dc_solves, 14u);
}

// ----------------------------------------- MC inner-pool stats attribution

TEST(ContextStats, JournalCoversInnerMonteCarloPoolWork) {
    // Ground truth: the same Monte-Carlo batch run serially under an
    // explicit context. Draws are pre-generated from one Rng, so the
    // solver work is independent of the pool's thread count.
    const device::ModelSet models = device::make_model_set();
    const sram::CellConfig cell_cfg =
        sram::proposed_design(0.8, models).config;
    mc::VariationSpec vspec;
    vspec.table_spec.points = 121; // coarse tables keep the test quick
    const mc::TfetVariationSampler sampler(vspec);
    const sram::MetricOptions opts;
    const auto metric = [&opts](sram::SramCell& cell) {
        return sram::worst_hold_static_power(cell, opts);
    };
    constexpr std::size_t kSamples = 8;

    const spice::SimContext serial(spice::SimConfig{});
    mc::run_monte_carlo(serial, cell_cfg, sampler, kSamples, 99, metric,
                        /*threads=*/1);
    const std::uint64_t truth = serial.stats().nr_iterations;
    ASSERT_GT(truth, 0u);

    // The regression: a runner task fanning the batch to a 4-thread inner
    // pool must journal the full total, not just the solves that happened
    // to land on the task's own thread.
    const fs::path dir = scratch("mc_journal");
    runner::RunnerConfig cfg;
    cfg.run_name = "mcstats";
    cfg.threads = 1;
    cfg.cache_mode = runner::CacheMode::kOff;
    cfg.cache_dir = dir / "cache";
    cfg.out_dir = dir / "out";
    cfg.print_summary = false;
    runner::Runner r(cfg);
    runner::TaskSpec spec;
    spec.id = "mc_batch";
    spec.fn = [&] {
        mc::run_monte_carlo(cell_cfg, sampler, kSamples, 99, metric,
                            /*threads=*/4);
        return runner::TaskResult{};
    };
    r.add(std::move(spec));
    const runner::RunSummary summary = r.run();
    EXPECT_EQ(summary.nr_iterations, truth);

    std::ifstream journal(cfg.out_dir / "mcstats_journal.jsonl");
    ASSERT_TRUE(journal.is_open());
    std::string line;
    ASSERT_TRUE(std::getline(journal, line));
    const std::optional<runner::Json> record = runner::Json::parse(line);
    ASSERT_TRUE(record.has_value()) << line;
    const runner::Json* task = record->find("task");
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(task->as_string(), "mc_batch");
    const runner::Json* iters = record->find("nr_iterations");
    ASSERT_NE(iters, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(iters->as_number()), truth);
}

} // namespace
} // namespace tfetsram
