// Differential-identity harness for the topology-as-data refactor: a
// frozen copy of the legacy hand-wired build_cell (the pre-spec version,
// lifted verbatim from src/sram/cell.cpp before CellSpec landed) is built
// side by side with the spec-driven instantiation for every legacy
// CellKind. Node tables, device stamp sequences, DC hold solutions, and
// the headline metrics (WLcrit, DRNM) must match bit for bit — both
// paths share the exact same ModelSet pointers, so any divergence is a
// topology or emission-order regression, not numerics.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "device/models.hpp"
#include "sram/cell.hpp"
#include "sram/cell_spec.hpp"
#include "sram/metrics.hpp"
#include "sram/operations.hpp"

namespace tfetsram::sram {
namespace legacy {

// ---- frozen pre-refactor builder (do not modernize) --------------------

void build_core(SramCell& cell, const spice::TransistorModelPtr& n_model,
                const spice::TransistorModelPtr& p_model, bool tfet_core) {
    const CellConfig& cfg = cell.config;
    const double w_pd = cfg.beta * cfg.w_access;
    spice::Circuit& ckt = cell.circuit;

    auto& pdl = ckt.add_transistor("PDL", n_model, cell.q, cell.qb, cell.vss, w_pd);
    auto& pul = ckt.add_transistor("PUL", p_model, cell.q, cell.qb, cell.vdd,
                                   cfg.w_pullup);
    auto& pdr = ckt.add_transistor("PDR", n_model, cell.qb, cell.q, cell.vss, w_pd);
    auto& pur = ckt.add_transistor("PUR", p_model, cell.qb, cell.q, cell.vdd,
                                   cfg.w_pullup);
    if (tfet_core) {
        cell.variable_devices.push_back(&pdl);
        cell.variable_devices.push_back(&pul);
        cell.variable_devices.push_back(&pdr);
        cell.variable_devices.push_back(&pur);
    }

    ckt.add_capacitor("Cq", cell.q, spice::kGround, cfg.c_node);
    ckt.add_capacitor("Cqb", cell.qb, spice::kGround, cfg.c_node);
}

spice::Transistor& build_access(SramCell& cell, const std::string& label,
                                AccessDevice access, spice::NodeId bitline,
                                spice::NodeId store) {
    const device::ModelSet& m = cell.config.models;
    spice::Circuit& ckt = cell.circuit;
    const double w = cell.config.w_access;
    switch (access) {
    case AccessDevice::kInwardN:
        return ckt.add_transistor(label, m.ntfet, bitline, cell.wl, store, w);
    case AccessDevice::kInwardP:
        return ckt.add_transistor(label, m.ptfet, store, cell.wl, bitline, w);
    case AccessDevice::kOutwardN:
        return ckt.add_transistor(label, m.ntfet, store, cell.wl, bitline, w);
    case AccessDevice::kOutwardP:
        return ckt.add_transistor(label, m.ptfet, bitline, cell.wl, store, w);
    case AccessDevice::kCmos:
        return ckt.add_transistor(label, m.nmos, bitline, cell.wl, store, w);
    }
    throw std::invalid_argument("build_access: bad access device");
}

void build_bitline(SramCell& cell, const std::string& name,
                   spice::NodeId bitline, spice::VoltageSource*& src,
                   spice::TimedSwitch*& sw) {
    spice::Circuit& ckt = cell.circuit;
    const spice::NodeId drv = ckt.add_node(name + "_drv");
    src = &ckt.add_vsource("V" + name, drv, spice::kGround,
                           spice::Waveform::dc(cell.config.vdd));
    sw = &ckt.add_switch("SW" + name, drv, bitline, cell.config.r_precharge,
                         1e12, spice::Waveform::dc(1.0));
    ckt.add_capacitor("C" + name, bitline, spice::kGround,
                      cell.config.c_bitline);
}

SramCell build_cell(const CellConfig& config, const spice::SimContext* sim) {
    SramCell cell;
    cell.config = config;
    cell.sim = sim;
    spice::Circuit& ckt = cell.circuit;

    cell.q = ckt.add_node("q");
    cell.qb = ckt.add_node("qb");
    cell.bl = ckt.add_node("bl");
    cell.blb = ckt.add_node("blb");
    cell.wl = ckt.add_node("wl");
    cell.vdd = ckt.add_node("vdd");
    cell.vss = ckt.add_node("vss");

    cell.v_vdd = &ckt.add_vsource("Vvdd", cell.vdd, spice::kGround,
                                  spice::Waveform::dc(config.vdd));
    cell.v_vss = &ckt.add_vsource("Vvss", cell.vss, spice::kGround,
                                  spice::Waveform::dc(0.0));

    const bool tfet_core = config.kind != CellKind::kCmos6T;
    const auto& n_core = tfet_core ? config.models.ntfet : config.models.nmos;
    const auto& p_core = tfet_core ? config.models.ptfet : config.models.pmos;

    build_bitline(cell, "bl", cell.bl, cell.v_bl, cell.sw_bl);
    build_bitline(cell, "blb", cell.blb, cell.v_blb, cell.sw_blb);

    switch (config.kind) {
    case CellKind::kCmos6T:
    case CellKind::kTfet6T: {
        const bool ptype = tfet_core && access_is_ptype(config.access);
        cell.v_wl = &ckt.add_vsource(
            "Vwl", cell.wl, spice::kGround,
            spice::Waveform::dc(ptype ? config.vdd : 0.0));
        const CellPorts ports{cell.q,  cell.qb,  cell.bl, cell.blb,
                              cell.wl, cell.vdd, cell.vss};
        const auto devices = build_6t_devices(ckt, config, ports, "");
        if (tfet_core)
            cell.variable_devices = devices;
        break;
    }
    case CellKind::kTfet7T: {
        build_core(cell, n_core, p_core, tfet_core);
        cell.v_wl = &ckt.add_vsource("Vwl", cell.wl, spice::kGround,
                                     spice::Waveform::dc(0.0));
        auto& axl =
            build_access(cell, "AXL", AccessDevice::kOutwardN, cell.bl, cell.q);
        auto& axr = build_access(cell, "AXR", AccessDevice::kOutwardN, cell.blb,
                                 cell.qb);
        cell.variable_devices.push_back(&axl);
        cell.variable_devices.push_back(&axr);
        cell.v_bl->set_waveform(spice::Waveform::dc(0.0));
        cell.v_blb->set_waveform(spice::Waveform::dc(0.0));

        cell.rbl = ckt.add_node("rbl");
        cell.rwl = ckt.add_node("rwl");
        cell.v_rwl = &ckt.add_vsource("Vrwl", cell.rwl, spice::kGround,
                                      spice::Waveform::dc(config.vdd));
        const spice::NodeId rdrv = ckt.add_node("rbl_drv");
        cell.v_rbl = &ckt.add_vsource("Vrbl", rdrv, spice::kGround,
                                      spice::Waveform::dc(config.vdd));
        cell.sw_rbl = &ckt.add_switch("SWrbl", rdrv, cell.rbl,
                                      config.r_precharge, 1e12,
                                      spice::Waveform::dc(1.0));
        ckt.add_capacitor("Crbl", cell.rbl, spice::kGround, config.c_bitline);
        auto& m7 = ckt.add_transistor("M7", config.models.ntfet, cell.rbl,
                                      cell.qb, cell.rwl, config.w_access);
        cell.variable_devices.push_back(&m7);
        break;
    }
    case CellKind::kTfetAsym6T: {
        build_core(cell, n_core, p_core, tfet_core);
        cell.v_wl = &ckt.add_vsource("Vwl", cell.wl, spice::kGround,
                                     spice::Waveform::dc(0.0));
        auto& axl =
            build_access(cell, "AXL", AccessDevice::kOutwardN, cell.bl, cell.q);
        auto& axr =
            build_access(cell, "AXR", AccessDevice::kInwardN, cell.blb, cell.qb);
        cell.variable_devices.push_back(&axl);
        cell.variable_devices.push_back(&axr);
        break;
    }
    }
    ckt.prepare();
    return cell;
}

} // namespace legacy

namespace {

// Tabulated models shared by both builders — identical pointers, so
// device evaluation is the same code path on the same tables.
const device::ModelSet& shared_models() {
    static const device::ModelSet set = device::make_model_set({}, true);
    return set;
}

CellConfig config_for(CellKind kind, AccessDevice access) {
    CellConfig cfg;
    cfg.kind = kind;
    cfg.access = access;
    cfg.models = shared_models();
    return cfg;
}

struct LegacyCase {
    const char* name;
    CellKind kind;
    AccessDevice access;
};

const std::vector<LegacyCase>& legacy_cases() {
    static const std::vector<LegacyCase> cases = {
        {"tfet6t_inwardP", CellKind::kTfet6T, AccessDevice::kInwardP},
        {"tfet6t_outwardN", CellKind::kTfet6T, AccessDevice::kOutwardN},
        {"cmos6t", CellKind::kCmos6T, AccessDevice::kCmos},
        {"tfet7t", CellKind::kTfet7T, AccessDevice::kOutwardN},
        {"asym6t", CellKind::kTfetAsym6T, AccessDevice::kOutwardN},
    };
    return cases;
}

std::vector<std::string> node_names(const spice::Circuit& ckt) {
    std::vector<std::string> names;
    for (spice::NodeId n = 0; n < ckt.num_nodes(); ++n)
        names.push_back(ckt.node_name(n));
    return names;
}

// The stamp sequence: every device in registration order. Emission order
// decides MNA row/column layout, so identity here (together with the node
// table) pins the whole system matrix.
std::vector<std::string> stamp_sequence(const spice::Circuit& ckt) {
    std::vector<std::string> labels;
    for (const auto& dev : ckt.devices())
        labels.push_back(dev->label());
    return labels;
}

class CellZooDiff : public ::testing::TestWithParam<LegacyCase> {};

TEST_P(CellZooDiff, TopologyIdentical) {
    const LegacyCase& tc = GetParam();
    const CellConfig cfg = config_for(tc.kind, tc.access);
    const SramCell ref = legacy::build_cell(cfg, nullptr);
    const SramCell now = build_cell(cfg);

    EXPECT_EQ(node_names(ref.circuit), node_names(now.circuit));
    EXPECT_EQ(stamp_sequence(ref.circuit), stamp_sequence(now.circuit));
    EXPECT_EQ(ref.circuit.num_unknowns(), now.circuit.num_unknowns());
    EXPECT_EQ(ref.circuit.voltage_sources().size(),
              now.circuit.voltage_sources().size());

    // Port handles resolve to the same node ids.
    EXPECT_EQ(ref.q, now.q);
    EXPECT_EQ(ref.qb, now.qb);
    EXPECT_EQ(ref.bl, now.bl);
    EXPECT_EQ(ref.blb, now.blb);
    EXPECT_EQ(ref.wl, now.wl);
    EXPECT_EQ(ref.rbl, now.rbl);
    EXPECT_EQ(ref.rwl, now.rwl);
    EXPECT_EQ(ref.v_rwl == nullptr, now.v_rwl == nullptr);
    EXPECT_EQ(ref.sw_rbl == nullptr, now.sw_rbl == nullptr);
}

TEST_P(CellZooDiff, HoldSolutionsBitIdentical) {
    const LegacyCase& tc = GetParam();
    const CellConfig cfg = config_for(tc.kind, tc.access);
    SramCell ref = legacy::build_cell(cfg, nullptr);
    SramCell now = build_cell(cfg);
    program_hold(ref);
    program_hold(now);

    const spice::SolverOptions opts;
    for (bool q_high : {false, true}) {
        const HoldState a = solve_hold_state(ref, q_high, opts);
        const HoldState b = solve_hold_state(now, q_high, opts);
        ASSERT_TRUE(a.converged);
        ASSERT_TRUE(b.converged);
        EXPECT_EQ(a.state_ok, b.state_ok);
        ASSERT_EQ(a.x.size(), b.x.size());
        for (std::size_t i = 0; i < a.x.size(); ++i)
            EXPECT_EQ(a.x[i], b.x[i]) << "unknown " << i << " q_high=" << q_high;
    }
}

TEST_P(CellZooDiff, MetricsBitIdentical) {
    const LegacyCase& tc = GetParam();
    const CellConfig cfg = config_for(tc.kind, tc.access);
    SramCell ref = legacy::build_cell(cfg, nullptr);
    SramCell now = build_cell(cfg);

    const MetricOptions opts;
    if (builtin_spec(tc.kind).wlcrit_defined) {
        const double wl_ref = critical_wordline_pulse(ref, Assist::kNone, opts);
        const double wl_now = critical_wordline_pulse(now, Assist::kNone, opts);
        EXPECT_EQ(wl_ref, wl_now);
    }
    const DrnmResult dr_ref = dynamic_read_noise_margin(ref, Assist::kNone, opts);
    const DrnmResult dr_now = dynamic_read_noise_margin(now, Assist::kNone, opts);
    EXPECT_EQ(dr_ref.valid, dr_now.valid);
    EXPECT_EQ(dr_ref.flipped, dr_now.flipped);
    EXPECT_EQ(dr_ref.drnm, dr_now.drnm);

    const double p_ref = worst_hold_static_power(ref, opts);
    const double p_now = worst_hold_static_power(now, opts);
    EXPECT_EQ(p_ref, p_now);
}

INSTANTIATE_TEST_SUITE_P(LegacyKinds, CellZooDiff,
                         ::testing::ValuesIn(legacy_cases()),
                         [](const ::testing::TestParamInfo<LegacyCase>& tpi) {
                             return std::string(tpi.param.name);
                         });

// The registry is the naming authority: display names the reports print
// must keep their historical values for the legacy four.
TEST(CellZoo, LegacyDisplayNamesStable) {
    EXPECT_STREQ(to_string(CellKind::kCmos6T), "6T CMOS SRAM");
    EXPECT_STREQ(to_string(CellKind::kTfet6T), "6T TFET SRAM");
    EXPECT_STREQ(to_string(CellKind::kTfet7T), "7T TFET SRAM");
    EXPECT_STREQ(to_string(CellKind::kTfetAsym6T), "asymmetric 6T TFET SRAM");
}

} // namespace
} // namespace tfetsram::sram
