// End-to-end test of the design-exploration flow: the explorer must
// rediscover the paper's conclusions from scratch — inward pTFET access,
// write-favoring beta, a read-assist technique as the winner.

#include <gtest/gtest.h>

#include <cmath>

#include "core/explorer.hpp"
#include "core/report.hpp"

namespace tfetsram::core {
namespace {

ExplorerOptions quick_options() {
    ExplorerOptions opt;
    // Trimmed grids keep this test under control; the full sweep lives in
    // the benchmark harness.
    opt.wa_betas = {1.5, 2.5};
    opt.ra_betas = {0.6, 1.0};
    opt.mc_samples = 0;
    return opt;
}

TEST(Explorer, RediscoversThePapersDesign) {
    const RobustDesignReport report = explore(quick_options());

    // Stage 1: only the inward devices are quiet; only inward pTFET writes.
    ASSERT_EQ(report.access_study.size(), 4u);
    for (const AccessStudyRow& row : report.access_study) {
        const bool outward = row.access == sram::AccessDevice::kOutwardN ||
                             row.access == sram::AccessDevice::kOutwardP;
        if (outward) {
            EXPECT_GT(row.static_power, 1e-12) << sram::to_string(row.access);
        } else {
            EXPECT_LT(row.static_power, 1e-15) << sram::to_string(row.access);
        }
        if (row.access == sram::AccessDevice::kInwardN) {
            EXPECT_FALSE(row.write_ok);
        }
    }
    ASSERT_TRUE(report.chosen_access.has_value());
    EXPECT_EQ(*report.chosen_access, sram::AccessDevice::kInwardP);

    // Stage 2/3: a read assist at a write-favoring beta wins.
    ASSERT_TRUE(report.chosen_assist.has_value());
    EXPECT_TRUE(sram::is_read_assist(*report.chosen_assist));
    EXPECT_LE(report.chosen_beta, 1.0);

    // The recommended design is fully specified.
    EXPECT_EQ(report.recommended.config.access,
              sram::AccessDevice::kInwardP);
    EXPECT_NE(report.recommended.read_assist, sram::Assist::kNone);
}

TEST(Explorer, ReportRendersAllSections) {
    const RobustDesignReport report = explore(quick_options());
    const std::string text = report.to_text();
    EXPECT_NE(text.find("access-device study"), std::string::npos);
    EXPECT_NE(text.find("assist techniques"), std::string::npos);
    EXPECT_NE(text.find("recommended design"), std::string::npos);
    EXPECT_NE(text.find("inward pTFET"), std::string::npos);
}

TEST(Explorer, AssistCurvesCoverAllTechniques) {
    const RobustDesignReport report = explore(quick_options());
    // 8 techniques x 2 betas each.
    EXPECT_EQ(report.assist_curves.size(), 16u);
    EXPECT_EQ(report.assist_scores.size(), 8u);
}

TEST(ReportFormatting, PulseMarginPower) {
    EXPECT_EQ(format_pulse(std::numeric_limits<double>::infinity()),
              "inf (write failure)");
    EXPECT_EQ(format_pulse(std::nan("")), "n/a");
    EXPECT_EQ(format_pulse(1.5e-10), "150 ps");
    EXPECT_EQ(format_margin(0.123), "123 mV");
    EXPECT_NE(format_power(1.6e-17).find("e-17"), std::string::npos);
}

} // namespace
} // namespace tfetsram::core
