// Metric API behaviour (flip detection, delay measurement, failure
// signaling) and the cell area model.

#include <gtest/gtest.h>

#include <cmath>

#include "sram/area.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"

namespace tfetsram::sram {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

SramCell proposed(double vdd = 0.8) {
    return build_cell(proposed_design(vdd, models()).config);
}

TEST(Metrics, AttemptWriteShortPulseFails) {
    SramCell cell = proposed();
    const WriteOutcome out =
        attempt_write(cell, 2e-12, Assist::kNone, MetricOptions{});
    EXPECT_TRUE(out.simulated);
    EXPECT_FALSE(out.flipped);
}

TEST(Metrics, AttemptWriteLongPulseSucceeds) {
    SramCell cell = proposed();
    const WriteOutcome out =
        attempt_write(cell, 600e-12, Assist::kNone, MetricOptions{});
    EXPECT_TRUE(out.simulated);
    EXPECT_TRUE(out.flipped);
    EXPECT_GT(out.final_separation, 0.6);
}

TEST(Metrics, WlcritBracketsAttempts) {
    // The bisected WLcrit must separate failing from succeeding pulses.
    SramCell cell = proposed();
    const MetricOptions opts;
    const double wl = critical_wordline_pulse(cell, Assist::kNone, opts);
    ASSERT_TRUE(std::isfinite(wl));
    const WriteOutcome above =
        attempt_write(cell, wl * 1.2, Assist::kNone, opts);
    EXPECT_TRUE(above.flipped);
    const WriteOutcome below =
        attempt_write(cell, wl * 0.7, Assist::kNone, opts);
    EXPECT_FALSE(below.flipped);
}

TEST(Metrics, WriteDelayShorterThanProbePulse) {
    SramCell cell = proposed();
    const MetricOptions opts;
    const double td = write_delay(cell, Assist::kNone, opts);
    ASSERT_FALSE(std::isnan(td));
    EXPECT_GT(td, 1e-12);
    EXPECT_LT(td, opts.write_probe_pulse);
}

TEST(Metrics, ReadDelayPositiveAndSmall) {
    SramCell cell = proposed();
    const double rd = read_delay(cell, Assist::kRaGndLowering, MetricOptions{});
    ASSERT_FALSE(std::isnan(rd));
    EXPECT_GT(rd, 1e-12);
    EXPECT_LT(rd, 400e-12);
}

TEST(Metrics, ReadDelayScalesWithBitlineCap) {
    CellConfig cfg = proposed_design(0.8, models()).config;
    cfg.c_bitline = 5e-15;
    SramCell light = build_cell(cfg);
    cfg.c_bitline = 40e-15;
    SramCell heavy = build_cell(cfg);
    const double rd_light = read_delay(light, Assist::kNone, MetricOptions{});
    const double rd_heavy = read_delay(heavy, Assist::kNone, MetricOptions{});
    ASSERT_FALSE(std::isnan(rd_light));
    ASSERT_FALSE(std::isnan(rd_heavy));
    EXPECT_GT(rd_heavy, 2.0 * rd_light);
}

TEST(Metrics, StaticPowerBothPolaritiesClose) {
    // The symmetric 6T cell should leak nearly identically for both
    // stored values.
    SramCell cell = proposed();
    const double p0 = hold_static_power(cell, false, MetricOptions{});
    const double p1 = hold_static_power(cell, true, MetricOptions{});
    ASSERT_FALSE(std::isnan(p0));
    ASSERT_FALSE(std::isnan(p1));
    EXPECT_NEAR(p0 / p1, 1.0, 0.2);
}

TEST(Metrics, DrnmSaturatesAtRailSeparation) {
    // With a strong assist the margin cannot exceed the rail span.
    SramCell cell = proposed();
    const DrnmResult d =
        dynamic_read_noise_margin(cell, Assist::kRaGndLowering,
                                  MetricOptions{});
    ASSERT_TRUE(d.valid);
    EXPECT_LT(d.drnm, 0.8 + 0.24 + 0.05);
}

class DrnmVsVdd : public ::testing::TestWithParam<double> {};

TEST_P(DrnmVsVdd, ValidAcrossSupplyRange) {
    // The paper sweeps VDD = 0.5..0.9 V (Figs. 11-12); every point must
    // simulate cleanly with the design's assist.
    const double vdd = GetParam();
    SramCell cell = proposed(vdd);
    const DrnmResult d = dynamic_read_noise_margin(
        cell, Assist::kRaGndLowering, MetricOptions{});
    EXPECT_TRUE(d.valid) << "vdd=" << vdd;
    EXPECT_FALSE(d.flipped) << "vdd=" << vdd;
    EXPECT_GT(d.drnm, 0.1) << "vdd=" << vdd;
}

INSTANTIATE_TEST_SUITE_P(SupplySweep, DrnmVsVdd,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

class WlcritVsVdd : public ::testing::TestWithParam<double> {};

TEST_P(WlcritVsVdd, FiniteAcrossSupplyRange) {
    const double vdd = GetParam();
    SramCell cell = proposed(vdd);
    const double wl =
        critical_wordline_pulse(cell, Assist::kNone, MetricOptions{});
    EXPECT_TRUE(std::isfinite(wl)) << "vdd=" << vdd;
}

INSTANTIATE_TEST_SUITE_P(SupplySweep, WlcritVsVdd,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

// ---- Area model ----

TEST(Area, SevenTCostsTenToFifteenPercent) {
    const device::ModelSet& m = models();
    SramCell six = build_cell(proposed_design(0.8, m).config);
    SramCell seven = build_cell(tfet7t_design(0.8, m).config);
    const double increase = cell_area(seven) / cell_area(six) - 1.0;
    EXPECT_GT(increase, 0.08);
    EXPECT_LT(increase, 0.20);
}

TEST(Area, MonotoneInBeta) {
    const device::ModelSet& m = models();
    CellConfig cfg = proposed_design(0.8, m).config;
    cfg.beta = 0.6;
    SramCell small = build_cell(cfg);
    cfg.beta = 2.0;
    SramCell large = build_cell(cfg);
    EXPECT_GT(cell_area(large), cell_area(small));
}

TEST(Area, SixTDesignsEqualWidthsEqualArea) {
    const device::ModelSet& m = models();
    CellConfig a = proposed_design(0.8, m).config;
    CellConfig b = asym6t_design(0.8, m).config;
    b.beta = a.beta;
    SramCell ca = build_cell(a);
    SramCell cb = build_cell(b);
    EXPECT_NEAR(cell_area(ca), cell_area(cb), 1e-12);
}

TEST(Designs, ComparisonSetContents) {
    const auto designs = comparison_designs(0.7, models());
    ASSERT_EQ(designs.size(), 4u);
    EXPECT_EQ(designs[0].config.kind, CellKind::kTfet6T);
    EXPECT_EQ(designs[0].read_assist, Assist::kRaGndLowering);
    EXPECT_NEAR(designs[0].config.beta, 0.6, 1e-12);
    EXPECT_EQ(designs[1].config.kind, CellKind::kCmos6T);
    EXPECT_FALSE(designs[2].wlcrit_defined); // asymmetric: no separatrix
    EXPECT_EQ(designs[3].config.kind, CellKind::kTfet7T);
    for (const auto& d : designs)
        EXPECT_DOUBLE_EQ(d.config.vdd, 0.7);
}

} // namespace
} // namespace tfetsram::sram
