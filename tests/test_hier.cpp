// Mixed-level engine unit tests: partition planning and refinement, the
// deterministic event queue, latched-cell extraction (validity, symmetry,
// memoization), MixedArray functional behaviour with exact event-counter
// contracts, the hier_* counter flow into spice::SolverStats, config
// validation shared with the flat driver, and the ArrayEngine mode policy.

#include <gtest/gtest.h>

#include <cmath>

#include "hier/engine.hpp"
#include "hier/event_queue.hpp"
#include "hier/latched_cell.hpp"
#include "hier/mixed_array.hpp"
#include "hier/partition.hpp"
#include "spice/solve_error.hpp"
#include "spice/stats.hpp"
#include "sram/designs.hpp"

namespace tfetsram::hier {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

array::ArrayConfig proposed_array(std::size_t rows, std::size_t cols) {
    array::ArrayConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.cell = sram::proposed_design(0.8, models()).config;
    cfg.read_assist = sram::Assist::kRaGndLowering;
    return cfg;
}

std::vector<std::vector<bool>> zeros(std::size_t rows, std::size_t cols) {
    return std::vector<std::vector<bool>>(rows,
                                          std::vector<bool>(cols, false));
}

// ------------------------------------------------------------ Partitioner

TEST(Partitioner, WritePromotesRowPlusSentinels) {
    const Partitioner p(8, 4, {});
    const PartitionPlan plan = p.plan_write(3, 1);
    // 4 wordline-edge cells (the asserted row) + 2 excursion sentinels on
    // the written column.
    ASSERT_EQ(plan.count(), 6u);
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_TRUE(plan.contains(3, c));
        EXPECT_EQ(plan.promoted[c].reason, PromoteReason::kWordlineEdge);
    }
    // Sentinels walk outward from the accessed row, below first.
    EXPECT_EQ(plan.promoted[4].ref.row, 2u);
    EXPECT_EQ(plan.promoted[4].ref.col, 1u);
    EXPECT_EQ(plan.promoted[4].reason, PromoteReason::kBitlineExcursion);
    EXPECT_EQ(plan.promoted[5].ref.row, 4u);
    EXPECT_EQ(plan.promoted[5].reason, PromoteReason::kBitlineExcursion);
}

TEST(Partitioner, ReadPromotesRowOnly) {
    const Partitioner p(8, 4, {});
    const PartitionPlan plan = p.plan_read(0, 2);
    ASSERT_EQ(plan.count(), 4u);
    for (const PromotedCell& c : plan.promoted)
        EXPECT_EQ(c.reason, PromoteReason::kWordlineEdge);
}

TEST(Partitioner, SentinelsClampToAvailableRows) {
    // A 2-row array has only one quiescent row to promote.
    const Partitioner p(2, 2, {});
    EXPECT_EQ(p.plan_write(0, 0).count(), 2u + 1u);
    // A 1-row array has none.
    const Partitioner p1(1, 3, {});
    EXPECT_EQ(p1.plan_write(0, 1).count(), 3u);
}

TEST(Partitioner, RefineAddsGuardSentinelsUntilExhausted) {
    const Partitioner p(4, 2, {});
    PartitionPlan plan = p.plan_write(1, 0); // rows {1}, sentinels {0, 2}
    ASSERT_EQ(plan.count(), 4u);
    // One quiescent row (3) remains on column 0.
    EXPECT_EQ(p.refine(plan, 0), 1u);
    EXPECT_TRUE(plan.contains(3, 0));
    EXPECT_EQ(plan.promoted.back().reason, PromoteReason::kGuardBand);
    EXPECT_EQ(p.refine(plan, 0), 0u); // saturated
}

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, DrainsInTimeThenIssueOrder) {
    EventQueue q;
    q.push({2e-12, 0, EventKind::kDemote, 0, 0, {}});
    q.push({1e-12, 0, EventKind::kPromote, 1, 0, {}});
    q.push({1e-12, 0, EventKind::kRelinearize, 2, 0, {}});
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().kind, EventKind::kPromote); // earliest time, first in
    EXPECT_EQ(q.pop().kind, EventKind::kRelinearize); // same time, later in
    EXPECT_EQ(q.pop().kind, EventKind::kDemote);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RendersReadably) {
    const Event ev{5e-10, 0, EventKind::kPromote, 3, 1,
                   PromoteReason::kWordlineEdge};
    const std::string s = to_string(ev);
    EXPECT_NE(s.find("promote"), std::string::npos);
    EXPECT_NE(s.find("r3c1"), std::string::npos);
    EXPECT_NE(s.find("wordline-edge"), std::string::npos);
}

// -------------------------------------------------------- LatchedCellModel

TEST(LatchedCellModel, ExtractsValidSymmetricLoads) {
    const sram::CellConfig cell = sram::proposed_design(0.8, models()).config;
    LatchedCellModel model(cell);
    const BitlineLoad& l0 = model.load(false, 0.0, 0.8, 0.8);
    const BitlineLoad& l1 = model.load(true, 0.0, 0.8, 0.8);
    ASSERT_TRUE(l0.valid);
    ASSERT_TRUE(l1.valid);
    // The quiescent cell holds its state at the extraction bias.
    EXPECT_GT(l1.v_q - l1.v_qb, 0.6);
    EXPECT_GT(l0.v_qb - l0.v_q, 0.6);
    // The 6T cell is mirror-symmetric, so state 0's BL leakage matches
    // state 1's BLB leakage at the symmetric bias.
    EXPECT_NEAR(l0.i_bl, l1.i_blb, 1e-12);
    EXPECT_NEAR(l0.i_blb, l1.i_bl, 1e-12);
    // Leakage of an off access device stays far below device on-current.
    EXPECT_LT(std::fabs(l0.i_bl), 1e-6);
    EXPECT_LT(std::fabs(l0.i_blb), 1e-6);
}

TEST(LatchedCellModel, MemoizesByQuantizedBias) {
    const sram::CellConfig cell = sram::proposed_design(0.8, models()).config;
    LatchedCellModel model(cell);
    (void)model.load(false, 0.0, 0.8, 0.8);
    const std::size_t cold = model.extractions();
    EXPECT_GE(cold, 0u);
    // Same point again (with sub-uV noise): served from the memo.
    (void)model.load(false, 0.0, 0.8 + 1e-9, 0.8);
    EXPECT_EQ(model.extractions(), cold);
    EXPECT_GE(model.cache_hits(), 1u);
}

// --------------------------------------------------------------- MixedArray

TEST(MixedArray, ValidatesConfigLikeFlatDriver) {
    array::ArrayConfig cfg = proposed_array(4, 2);
    cfg.rows = 0;
    try {
        const MixedArray arr(cfg);
        FAIL() << "0-row config must be rejected";
    } catch (const spice::SolveException& e) {
        EXPECT_EQ(e.error().code, spice::SolveErrorCode::kInvalidConfig);
    }
}

TEST(MixedArray, WriteCounterContract) {
    MixedArray arr(proposed_array(8, 4));
    ASSERT_TRUE(arr.initialize(zeros(8, 4)));
    const array::OpResult res = arr.write(3, 1, true);
    ASSERT_TRUE(res.ok) << res.message;
    EXPECT_TRUE(arr.stored(3, 1));
    const HierStats& st = arr.stats();
    // 4 wordline-edge + 2 sentinels, no guard trips, one lumped load
    // relinearization per column.
    EXPECT_EQ(st.promotions, 6u);
    EXPECT_EQ(st.demotions, 6u);
    EXPECT_EQ(st.relinearizations, 4u);
    EXPECT_EQ(st.guard_retries, 0u);
    EXPECT_EQ(st.operations, 1u);
    EXPECT_EQ(st.last_active_cells, 6u);
    EXPECT_EQ(st.last_latched_cells, 8u * 4u - 6u);
    EXPECT_GT(st.last_active_unknowns, 0u);
    // Event trace is ordered and bracketed: relinearize/promote first,
    // demote last.
    const std::vector<Event>& trace = arr.event_trace();
    ASSERT_EQ(trace.size(), 4u + 6u + 6u);
    EXPECT_EQ(trace.front().kind, EventKind::kRelinearize);
    EXPECT_EQ(trace.back().kind, EventKind::kDemote);
}

TEST(MixedArray, ReadCounterContract) {
    MixedArray arr(proposed_array(8, 4));
    ASSERT_TRUE(arr.initialize(zeros(8, 4)));
    const array::ReadResult res = arr.read(5, 2);
    ASSERT_TRUE(res.ok) << res.message;
    EXPECT_FALSE(res.value);
    const HierStats& st = arr.stats();
    EXPECT_EQ(st.promotions, 4u); // asserted row only
    EXPECT_EQ(st.demotions, 4u);
    EXPECT_EQ(st.relinearizations, 4u);
    EXPECT_EQ(st.guard_retries, 0u);
}

TEST(MixedArray, CountersFlowIntoSolverStats) {
    MixedArray arr(proposed_array(8, 4));
    ASSERT_TRUE(arr.initialize(zeros(8, 4)));
    const spice::SolverStats before = spice::solver_stats();
    ASSERT_TRUE(arr.write(0, 0, true).ok);
    const spice::SolverStats delta = spice::solver_stats() - before;
    EXPECT_EQ(delta.hier_promotions, 6u);
    EXPECT_EQ(delta.hier_demotions, 6u);
    EXPECT_EQ(delta.hier_relinearizations, 4u);
    EXPECT_EQ(delta.hier_guard_retries, 0u);
    // The gauge carries through because the region did hier work.
    EXPECT_EQ(delta.hier_active_unknowns, arr.stats().last_active_unknowns);
    // A region with no hier work reports a zero gauge.
    const spice::SolverStats idle =
        spice::solver_stats() - spice::solver_stats();
    EXPECT_EQ(idle.hier_active_unknowns, 0u);
}

TEST(MixedArray, OperationsAreDeterministic) {
    // Two identical arrays driven identically produce identical traces,
    // counters, and latched voltages.
    MixedArray a(proposed_array(4, 2));
    MixedArray b(proposed_array(4, 2));
    ASSERT_TRUE(a.initialize(zeros(4, 2)));
    ASSERT_TRUE(b.initialize(zeros(4, 2)));
    ASSERT_TRUE(a.write(1, 1, true).ok);
    ASSERT_TRUE(b.write(1, 1, true).ok);
    ASSERT_EQ(a.event_trace().size(), b.event_trace().size());
    for (std::size_t i = 0; i < a.event_trace().size(); ++i) {
        EXPECT_EQ(a.event_trace()[i].kind, b.event_trace()[i].kind);
        EXPECT_EQ(a.event_trace()[i].time, b.event_trace()[i].time);
        EXPECT_EQ(a.event_trace()[i].row, b.event_trace()[i].row);
        EXPECT_EQ(a.event_trace()[i].col, b.event_trace()[i].col);
    }
    EXPECT_EQ(a.stats().promotions, b.stats().promotions);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 2; ++c) {
            EXPECT_DOUBLE_EQ(a.latched(r, c).v_q, b.latched(r, c).v_q);
            EXPECT_DOUBLE_EQ(a.latched(r, c).v_qb, b.latched(r, c).v_qb);
        }
}

TEST(MixedArray, PartitionStaysSmallOnTallArrays) {
    // 128 rows x 2 cols = 256 cells; the active partition must stay at
    // the size of (row + sentinels) regardless of array height.
    MixedArray arr(proposed_array(128, 2));
    ASSERT_TRUE(arr.initialize(zeros(128, 2)));
    ASSERT_TRUE(arr.write(64, 0, true).ok);
    EXPECT_EQ(arr.stats().last_active_cells, 2u + 2u);
    EXPECT_EQ(arr.stats().last_latched_cells, 256u - 4u);
    // Far smaller than the flat circuit would be (~256 * 2 nodes + rails).
    EXPECT_LT(arr.stats().last_active_unknowns, 60u);
    // Unaccessed cells kept their latched state.
    EXPECT_TRUE(arr.stored(64, 0));
    EXPECT_FALSE(arr.stored(0, 0));
    EXPECT_FALSE(arr.stored(127, 1));
}

// --------------------------------------------------------------- ArrayEngine

TEST(ArrayEngine, AutoRoutesByRowCount) {
    ArrayEngine small(proposed_array(4, 2));
    EXPECT_FALSE(small.mixed());
    ArrayEngine tall(proposed_array(kAutoMixedRows, 2));
    EXPECT_TRUE(tall.mixed());
    ArrayEngine forced(proposed_array(4, 2), EngineMode::kMixed);
    EXPECT_TRUE(forced.mixed());
}

TEST(ArrayEngine, MixedEngineIsFunctionalThroughFacade) {
    ArrayEngine eng(proposed_array(4, 2), EngineMode::kMixed);
    ASSERT_TRUE(eng.initialize(zeros(4, 2)));
    ASSERT_TRUE(eng.write(2, 1, true).ok);
    const array::ReadResult rd = eng.read(2, 1);
    ASSERT_TRUE(rd.ok) << rd.message;
    EXPECT_TRUE(rd.value);
    ASSERT_NE(eng.hier_stats(), nullptr);
    EXPECT_EQ(eng.hier_stats()->operations, 2u);
    EXPECT_GT(eng.unknowns(), 0u);
    EXPECT_GT(eng.transistors(), 0u);
}

} // namespace
} // namespace tfetsram::hier
