// Experiment-runner tests: thread pool, task-graph scheduling order,
// content-addressed cache round-trips and invalidation, setup pruning,
// telemetry artifacts, and determinism across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runner/json.hpp"
#include "runner/runner.hpp"
#include "util/contracts.hpp"

namespace tfetsram::runner {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch dir per test case.
fs::path scratch(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("runner_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

RunnerConfig test_config(const std::string& name, std::size_t threads,
                         CacheMode mode = CacheMode::kOff) {
    const fs::path dir = scratch(name);
    RunnerConfig cfg;
    cfg.run_name = name;
    cfg.threads = threads;
    cfg.cache_mode = mode;
    cfg.cache_dir = dir / "cache";
    cfg.out_dir = dir / "out";
    cfg.print_summary = false;
    return cfg;
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleDrainsSubmittedJobs) {
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { ++done; });
    pool.wait_idle();
    EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SingleThreadRunsInline) {
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ------------------------------------------------------------------ JSON

TEST(Json, DumpParseRoundTrip) {
    Json obj = Json::object();
    obj.set("name", "fig6");
    obj.set("wall", 1.25e-3);
    obj.set("count", 21);
    obj.set("ok", true);
    Json arr = Json::array();
    arr.push_back("a,b\nc\"d\\e");
    arr.push_back(Json());
    obj.set("rows", std::move(arr));

    const std::string text = obj.dump();
    const std::optional<Json> back = Json::parse(text);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->find("name")->as_string(), "fig6");
    EXPECT_DOUBLE_EQ(back->find("wall")->as_number(), 1.25e-3);
    EXPECT_DOUBLE_EQ(back->find("count")->as_number(), 21);
    EXPECT_TRUE(back->find("ok")->as_bool());
    EXPECT_EQ(back->find("rows")->at(0).as_string(), "a,b\nc\"d\\e");
    EXPECT_TRUE(back->find("rows")->at(1).is_null());
    // Determinism: dumping the reparsed tree reproduces the text.
    EXPECT_EQ(back->dump(), text);
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_FALSE(Json::parse("{").has_value());
    EXPECT_FALSE(Json::parse("[1,]").has_value());
    EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
    EXPECT_FALSE(Json::parse("\"unterminated").has_value());
    EXPECT_TRUE(Json::parse(" [1, 2, 3] ").has_value());
}

// ----------------------------------------------------------------- cache

TEST(CacheKey, CanonicalTextAndStableHash) {
    CacheKey key("fig6");
    key.add("beta", 1.5).add("assist", "gnd_raising");
    EXPECT_EQ(key.text(), "task=fig6;beta=1.5;assist=gnd_raising");
    EXPECT_EQ(key.hash().size(), 16u);
    CacheKey same("fig6");
    same.add("beta", 1.5).add("assist", "gnd_raising");
    EXPECT_EQ(key.hash(), same.hash());
    CacheKey other("fig6");
    other.add("beta", 2.0).add("assist", "gnd_raising");
    EXPECT_NE(key.hash(), other.hash());
}

TEST(ResultCache, RoundTripsAndInvalidatesOnKeyChange) {
    const fs::path dir = scratch("cache_roundtrip");
    ResultCache cache(dir, CacheMode::kReadWrite);

    CacheKey key("unit");
    key.add("x", 1.0);
    TaskResult result;
    result.set("value", "1.23e-4");
    result.set("note", "comma,quote\",newline\n");
    result.rows = {{"a", "b"}, {"c"}};

    EXPECT_FALSE(cache.load(key).has_value()); // cold miss
    EXPECT_TRUE(cache.store(key, result));
    const std::optional<TaskResult> hit = cache.load(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, result);

    CacheKey changed("unit");
    changed.add("x", 2.0); // different declared input -> different entry
    EXPECT_FALSE(cache.load(changed).has_value());
}

TEST(ResultCache, ModesControlReadAndWrite) {
    const fs::path dir = scratch("cache_modes");
    CacheKey key("unit");
    key.add("x", 1.0);
    TaskResult result;
    result.set("v", "1");

    ResultCache off(dir, CacheMode::kOff);
    EXPECT_FALSE(off.store(key, result));
    EXPECT_TRUE(fs::is_empty(dir) || !fs::exists(dir));

    ResultCache rw(dir, CacheMode::kReadWrite);
    EXPECT_TRUE(rw.store(key, result));
    EXPECT_TRUE(rw.load(key).has_value());
    EXPECT_FALSE(off.load(key).has_value()); // off never reads

    ResultCache ro(dir, CacheMode::kReadOnly);
    EXPECT_TRUE(ro.load(key).has_value()); // reads existing entries
    CacheKey fresh("unit");
    fresh.add("x", 3.0);
    EXPECT_FALSE(ro.store(fresh, result)); // but never writes
    EXPECT_FALSE(rw.load(fresh).has_value());
}

TEST(ResultCache, CorruptEntryIsAMiss) {
    const fs::path dir = scratch("cache_corrupt");
    ResultCache cache(dir, CacheMode::kReadWrite);
    CacheKey key("unit");
    key.add("x", 1.0);
    TaskResult result;
    result.set("v", "1");
    ASSERT_TRUE(cache.store(key, result));
    {
        std::ofstream trash(dir / (key.hash() + ".json"), std::ios::trunc);
        trash << "{not json";
    }
    EXPECT_FALSE(cache.load(key).has_value());
}

// ------------------------------------------------------------- scheduler

/// Diamond: a -> {b, c} -> d. Records completion order under a mutex.
TEST(Runner, DiamondRunsInTopologicalOrderAtEveryThreadCount) {
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        Runner r(test_config(
            "diamond_t" + std::to_string(threads), threads));
        std::mutex m;
        std::vector<std::string> order;
        auto note = [&](const char* id) {
            std::lock_guard<std::mutex> lock(m);
            order.emplace_back(id);
            return TaskResult{};
        };
        const TaskId a = r.add({.id = "a", .fn = [&] { return note("a"); }});
        const TaskId b = r.add(
            {.id = "b", .deps = {a}, .fn = [&] { return note("b"); }});
        const TaskId c = r.add(
            {.id = "c", .deps = {a}, .fn = [&] { return note("c"); }});
        r.add({.id = "d", .deps = {b, c}, .fn = [&] { return note("d"); }});

        const RunSummary summary = r.run();
        EXPECT_EQ(summary.tasks, 4u);
        EXPECT_EQ(summary.executed, 4u);
        ASSERT_EQ(order.size(), 4u);
        const auto pos = [&](const std::string& id) {
            return std::find(order.begin(), order.end(), id) - order.begin();
        };
        EXPECT_EQ(pos("a"), 0) << "threads=" << threads;
        EXPECT_LT(pos("b"), pos("d")) << "threads=" << threads;
        EXPECT_LT(pos("c"), pos("d")) << "threads=" << threads;
    }
}

TEST(Runner, ForwardAndSelfDepsAreRejected) {
    Runner r(test_config("bad_deps", 1));
    EXPECT_THROW(
        r.add({.id = "self", .deps = {0}, .fn = [] { return TaskResult{}; }}),
        contract_violation);
}

TEST(Runner, TaskExceptionPropagatesFromRun) {
    Runner r(test_config("boom", 2));
    r.add({.id = "ok", .fn = [] { return TaskResult{}; }});
    r.add({.id = "boom", .fn = []() -> TaskResult {
               throw std::runtime_error("task blew up");
           }});
    EXPECT_THROW(r.run(), std::runtime_error);
}

TEST(Runner, DeterministicResultsRegardlessOfThreadCount) {
    // Mirror of run_monte_carlo's determinism contract at the graph level:
    // each task's result depends only on its declared inputs, so any
    // schedule produces identical results.
    auto run_with = [](std::size_t threads) {
        Runner r(test_config("det_t" + std::to_string(threads), threads));
        std::vector<TaskId> ids;
        for (int i = 0; i < 16; ++i) {
            ids.push_back(r.add({.id = "t" + std::to_string(i),
                                 .fn = [i] {
                                     TaskResult res;
                                     res.set("v", std::to_string(i * i + 7));
                                     return res;
                                 }}));
        }
        r.run();
        std::vector<std::string> values;
        for (TaskId id : ids)
            values.push_back(r.result(id).get("v"));
        return values;
    };
    const auto serial = run_with(1);
    EXPECT_EQ(serial, run_with(4));
    EXPECT_EQ(serial, run_with(8));
}

// --------------------------------------------- cache x scheduler x journal

TEST(Runner, WarmRunServesHitsPrunesSetupAndMatchesColdResults) {
    const fs::path dir = scratch("warm");
    RunnerConfig cfg;
    cfg.run_name = "warm";
    cfg.threads = 2;
    cfg.cache_mode = CacheMode::kReadWrite;
    cfg.cache_dir = dir / "cache";
    cfg.out_dir = dir / "out";
    cfg.print_summary = false;

    std::atomic<int> setup_runs{0};
    std::atomic<int> work_runs{0};
    auto build = [&](Runner& r) {
        std::vector<TaskId> ids;
        TaskSpec setup;
        setup.id = "setup";
        setup.setup_only = true;
        setup.fn = [&] {
            ++setup_runs;
            return TaskResult{};
        };
        const TaskId s = r.add(std::move(setup));
        for (int i = 0; i < 10; ++i) {
            TaskSpec spec;
            spec.id = "point" + std::to_string(i);
            spec.deps = {s};
            spec.key = CacheKey("warm_point").add("i", std::size_t(i));
            spec.fn = [&work_runs, i] {
                ++work_runs;
                TaskResult res;
                res.set("v", std::to_string(2 * i));
                res.rows.push_back({"row", std::to_string(i)});
                return res;
            };
            ids.push_back(r.add(std::move(spec)));
        }
        return ids;
    };

    Runner cold(cfg);
    const std::vector<TaskId> cold_ids = build(cold);
    const RunSummary cold_summary = cold.run();
    EXPECT_EQ(cold_summary.executed, 11u);
    EXPECT_EQ(cold_summary.cache_hits, 0u);
    EXPECT_EQ(setup_runs.load(), 1);
    EXPECT_EQ(work_runs.load(), 10);

    Runner warm(cfg);
    const std::vector<TaskId> warm_ids = build(warm);
    const RunSummary warm_summary = warm.run();
    EXPECT_EQ(warm_summary.tasks, 11u);
    EXPECT_EQ(warm_summary.cache_hits, 10u);
    EXPECT_EQ(warm_summary.pruned, 1u);
    EXPECT_EQ(warm_summary.executed, 0u);
    EXPECT_EQ(setup_runs.load(), 1) << "setup must be pruned on warm run";
    EXPECT_EQ(work_runs.load(), 10) << "no task body may re-execute";
    // >= 90 % of task executions skipped — the acceptance bar.
    EXPECT_GE(warm_summary.cache_hits + warm_summary.pruned,
              (9 * warm_summary.tasks) / 10);

    for (std::size_t i = 0; i < cold_ids.size(); ++i)
        EXPECT_EQ(cold.result(cold_ids[i]), warm.result(warm_ids[i]));

    // Journal is valid JSONL with one record per task, and the warm run's
    // records are all hit/pruned.
    std::ifstream journal(cfg.out_dir / "warm_journal.jsonl");
    ASSERT_TRUE(journal.is_open());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(journal, line)) {
        ++lines;
        const std::optional<Json> record = Json::parse(line);
        ASSERT_TRUE(record.has_value()) << line;
        const std::string cache = record->find("cache")->as_string();
        EXPECT_TRUE(cache == "hit" || cache == "pruned") << line;
    }
    EXPECT_EQ(lines, 11u);

    // BENCH json artifact reflects the warm tallies.
    std::ifstream bench_file(cfg.out_dir / "BENCH_warm.json");
    ASSERT_TRUE(bench_file.is_open());
    std::stringstream buf;
    buf << bench_file.rdbuf();
    const std::optional<Json> bench = Json::parse(buf.str());
    ASSERT_TRUE(bench.has_value());
    EXPECT_DOUBLE_EQ(bench->find("cache_hits")->as_number(), 10);
    EXPECT_DOUBLE_EQ(bench->find("executed")->as_number(), 0);
}

TEST(Runner, BenchMetricsFlowIntoJournalAndBenchOnColdAndWarmRuns) {
    // The "bench:" TaskResult channel: scalar metrics land in the task's
    // journal record and the BENCH artifact's task_metrics object, with
    // non-finite values mapped to JSON null — and because the values ride
    // the cached result, a warm (hit) run reproduces them identically.
    const fs::path dir = scratch("metrics");
    RunnerConfig cfg;
    cfg.run_name = "metrics";
    cfg.threads = 1;
    cfg.cache_mode = CacheMode::kReadWrite;
    cfg.cache_dir = dir / "cache";
    cfg.out_dir = dir / "out";
    cfg.print_summary = false;

    const auto run_once = [&] {
        Runner r(cfg);
        TaskSpec spec;
        spec.id = "yield";
        spec.key = CacheKey("metrics_point").add("i", 1.0);
        spec.fn = [] {
            TaskResult res;
            res.set("display", "for the console table");
            res.set("bench:p_fail", "3.2e-05");
            res.set("bench:sigma_level", "inf"); // non-finite -> null
            res.set("bench:note", "not-a-number-text");
            return res;
        };
        r.add(std::move(spec));
        return r.run();
    };

    const auto check_artifacts = [&](const char* which) {
        std::ifstream journal(cfg.out_dir / "metrics_journal.jsonl");
        ASSERT_TRUE(journal.is_open()) << which;
        std::string line;
        ASSERT_TRUE(std::getline(journal, line)) << which;
        const std::optional<Json> record = Json::parse(line);
        ASSERT_TRUE(record.has_value()) << which << ": " << line;
        const Json* metrics = record->find("metrics");
        ASSERT_NE(metrics, nullptr) << which << ": " << line;
        EXPECT_DOUBLE_EQ(metrics->find("p_fail")->as_number(), 3.2e-05)
            << which;
        EXPECT_TRUE(metrics->find("sigma_level")->is_null()) << which;
        EXPECT_EQ(metrics->find("note")->as_string(), "not-a-number-text")
            << which;
        EXPECT_EQ(metrics->find("display"), nullptr)
            << which << ": unprefixed values must stay out of the journal";

        std::ifstream bench_file(cfg.out_dir / "BENCH_metrics.json");
        ASSERT_TRUE(bench_file.is_open()) << which;
        std::stringstream buf;
        buf << bench_file.rdbuf();
        const std::optional<Json> bench = Json::parse(buf.str());
        ASSERT_TRUE(bench.has_value()) << which;
        const Json* task_metrics = bench->find("task_metrics");
        ASSERT_NE(task_metrics, nullptr) << which;
        const Json* task = task_metrics->find("yield");
        ASSERT_NE(task, nullptr) << which;
        EXPECT_DOUBLE_EQ(task->find("p_fail")->as_number(), 3.2e-05)
            << which;
    };

    const RunSummary cold = run_once();
    EXPECT_EQ(cold.executed, 1u);
    check_artifacts("cold");

    const RunSummary warm = run_once();
    EXPECT_EQ(warm.cache_hits, 1u);
    check_artifacts("warm");
}

TEST(Runner, CacheOffExecutesEverything) {
    const fs::path dir = scratch("cache_off_run");
    RunnerConfig cfg;
    cfg.run_name = "off";
    cfg.threads = 2;
    cfg.cache_mode = CacheMode::kOff;
    cfg.cache_dir = dir / "cache";
    cfg.out_dir = dir / "out";
    cfg.print_summary = false;

    for (int pass = 0; pass < 2; ++pass) {
        Runner r(cfg);
        TaskSpec spec;
        spec.id = "p";
        spec.key = CacheKey("off_point").add("i", 1.0);
        spec.fn = [] {
            TaskResult res;
            res.set("v", "x");
            return res;
        };
        r.add(std::move(spec));
        const RunSummary summary = r.run();
        EXPECT_EQ(summary.executed, 1u);
        EXPECT_EQ(summary.cache_hits, 0u);
    }
    EXPECT_FALSE(fs::exists(dir / "cache"));
}

} // namespace
} // namespace tfetsram::runner
