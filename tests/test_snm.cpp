// Static-noise-margin extension tests: butterfly analysis on the cells,
// cross-checked against the paper's qualitative stability structure.

#include <gtest/gtest.h>

#include "sram/designs.hpp"
#include "sram/snm.hpp"

namespace tfetsram::sram {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

CellConfig tfet6t(double beta) {
    CellConfig cfg;
    cfg.kind = CellKind::kTfet6T;
    cfg.access = AccessDevice::kInwardP;
    cfg.beta = beta;
    cfg.models = models();
    return cfg;
}

TEST(Snm, HoldMarginHealthy) {
    const SnmResult r = static_noise_margin(tfet6t(0.6), SnmMode::kHold);
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.snm, 0.15);      // a solid fraction of VDD = 0.8
    EXPECT_LT(r.snm, 0.45);      // and below the half-VDD bound
    EXPECT_GT(r.lobe_high, 0.0);
    EXPECT_GT(r.lobe_low, 0.0);
}

TEST(Snm, ReadMarginBelowHoldMargin) {
    // The access disturb always erodes the butterfly.
    const SnmResult hold = static_noise_margin(tfet6t(1.0), SnmMode::kHold);
    const SnmResult read = static_noise_margin(tfet6t(1.0), SnmMode::kRead);
    ASSERT_TRUE(hold.valid);
    ASSERT_TRUE(read.valid);
    EXPECT_LT(read.snm, hold.snm);
}

TEST(Snm, ReadMarginGrowsWithBeta) {
    // Same trend the dynamic DRNM shows (Fig. 4a).
    const SnmResult small = static_noise_margin(tfet6t(0.6), SnmMode::kRead);
    const SnmResult large = static_noise_margin(tfet6t(2.0), SnmMode::kRead);
    ASSERT_TRUE(small.valid);
    ASSERT_TRUE(large.valid);
    EXPECT_GT(large.snm, small.snm);
}

TEST(Snm, WriteSizedCellLosesStaticReadMargin) {
    // beta = 0.6: the dynamic analysis says unassisted reads flip; the
    // static butterfly should collapse (one lobe pinched) accordingly.
    const SnmResult read = static_noise_margin(tfet6t(0.6), SnmMode::kRead);
    ASSERT_TRUE(read.valid);
    EXPECT_LT(read.snm, 0.05);
}

TEST(Snm, CmosReadButterflyHealthyAtConventionalSizing) {
    CellConfig cfg;
    cfg.kind = CellKind::kCmos6T;
    cfg.access = AccessDevice::kCmos;
    cfg.beta = 1.5;
    cfg.models = models();
    const SnmResult read = static_noise_margin(cfg, SnmMode::kRead);
    ASSERT_TRUE(read.valid);
    EXPECT_GT(read.snm, 0.05);
}

TEST(Snm, SymmetricCellHasSymmetricLobes) {
    const SnmResult r = static_noise_margin(tfet6t(1.0), SnmMode::kHold);
    ASSERT_TRUE(r.valid);
    EXPECT_NEAR(r.lobe_high, r.lobe_low, 0.05);
}

} // namespace
} // namespace tfetsram::sram
