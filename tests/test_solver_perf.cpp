// Solver performance-contract and edge-case regression tests.
//
// The contract half pins the counters docs/SOLVER.md documents: a healthy
// converged Newton solve assembles each iterate exactly once (k + backtracks
// assemblies, k LU factorizations for a k-iteration solve), a warm re-solve
// from a converged point costs exactly one iteration, and the WLcrit
// bisection solves the pre-write hold state once rather than once per
// attempt. These tests fail against the pre-optimization solver (3 assemblies
// / 2 LU per warm re-solve; one hold solve per bisection attempt).
//
// The regression half covers three edge-case bugs fixed alongside:
//  * gmin-stepping with opts.gmin = 0 walked ~320 denormal stages because
//    its exact `g == gmin` termination test never fired,
//  * breakpoint handling used an absolute 1e-21 s tolerance, below one ulp
//    of t past ~1 ms, so nominally-equal breakpoints computed via different
//    floating-point paths forced attosecond micro-steps,
//  * TransientResult::min_difference reported +infinity for windows with no
//    trace data, which margin metrics would read as an infinite margin.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "device/models.hpp"
#include "la/matrix.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/solution.hpp"
#include "spice/stats.hpp"
#include "spice/transient.hpp"
#include "sram/cell.hpp"
#include "sram/metrics.hpp"
#include "sram/operations.hpp"
#include "util/fault.hpp"

namespace tfetsram {
namespace {

device::ModelSet models() {
    static const device::ModelSet set = device::make_model_set({}, false);
    return set;
}

sram::SramCell make_cell() {
    sram::CellConfig cfg;
    cfg.kind = sram::CellKind::kTfet6T;
    cfg.access = sram::AccessDevice::kInwardP;
    cfg.vdd = 0.8;
    cfg.beta = 0.6;
    cfg.models = models();
    return sram::build_cell(cfg);
}

spice::Circuit divider() {
    spice::Circuit c;
    const spice::NodeId top = c.add_node("top");
    const spice::NodeId mid = c.add_node("mid");
    c.add_vsource("V1", top, spice::kGround, spice::Waveform::dc(1.0));
    c.add_resistor("R1", top, mid, 1e3);
    c.add_resistor("R2", mid, spice::kGround, 3e3);
    return c;
}

spice::SolverStats metered_since(const spice::SolverStats& before) {
    return spice::solver_stats() - before;
}

// ------------------------------------------------------ assembly contract

TEST(SolverPerf, ConvergedLinearSolveAssemblesEachIterateOnce) {
    spice::Circuit c = divider();
    const spice::SolverStats before = spice::solver_stats();
    const spice::DcResult r = solve_dc(c, {});
    const spice::SolverStats d = metered_since(before);
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.strategy, "newton");
    EXPECT_EQ(d.dc_solves, 1u);
    EXPECT_EQ(d.lu_factorizations, d.nr_iterations);
    EXPECT_EQ(d.assemblies, d.nr_iterations + d.line_search_backtracks);
}

TEST(SolverPerf, ConvergedCellHoldSolveAssemblesEachIterateOnce) {
    sram::SramCell cell = make_cell();
    sram::program_hold(cell);
    const spice::SolverStats before = spice::solver_stats();
    const sram::HoldState hs =
        sram::solve_hold_state(cell, /*q_high=*/true, spice::SolverOptions{});
    const spice::SolverStats d = metered_since(before);
    ASSERT_TRUE(hs.converged);
    ASSERT_TRUE(hs.state_ok);
    // The pre-optimization loop re-assembled the accepted iterate inside the
    // line search and again in the wrapper: assemblies ran ~1.25x iterations
    // on this workload. Now every converged solve in the chain obeys
    // k + backtracks assemblies, k LU factorizations exactly.
    EXPECT_EQ(d.lu_factorizations, d.nr_iterations);
    EXPECT_EQ(d.assemblies, d.nr_iterations + d.line_search_backtracks);
}

TEST(SolverPerf, WarmResolveFromSolutionCostsOneIteration) {
    sram::SramCell cell = make_cell();
    sram::program_hold(cell);
    const sram::HoldState hs =
        sram::solve_hold_state(cell, /*q_high=*/true, spice::SolverOptions{});
    ASSERT_TRUE(hs.converged);

    const spice::SolverStats before = spice::solver_stats();
    const spice::DcResult r = solve_dc(cell.circuit, {}, 0.0, &hs.x);
    const spice::SolverStats d = metered_since(before);
    ASSERT_TRUE(r.converged);
    // Re-solving from a converged point must recognize the solution on the
    // first iterate: one assembly (the entering residual), one LU, one
    // iteration. The pre-optimization gate (`iter >= 2`) forced a second
    // iteration and its line search: 3 assemblies / 2 LU / 2 iterations.
    EXPECT_EQ(d.dc_solves, 1u);
    EXPECT_EQ(d.nr_iterations, 1u);
    EXPECT_EQ(d.assemblies, 1u);
    EXPECT_EQ(d.lu_factorizations, 1u);
}

TEST(SolverPerf, WlcritBisectionSolvesHoldStateOnce) {
    sram::SramCell cell = make_cell();
    const spice::SolverStats before = spice::solver_stats();
    const double wlcrit = sram::critical_wordline_pulse(cell);
    const spice::SolverStats d = metered_since(before);
    ASSERT_TRUE(std::isfinite(wlcrit));
    EXPECT_GT(wlcrit, 0.0);
    // Each bisection attempt costs one transient (whose t=0 operating point
    // is one dc solve, warm-started from the cached hold state). The hold
    // state itself is solved once for the whole bisection: two dc solves
    // (cold settling + forced state), three if the crawl fallback engages.
    // Pre-fix every attempt re-solved the hold state: dc_solves ran 3x the
    // transient count (42 vs 14 on this workload).
    EXPECT_GE(d.transient_solves, 4u);
    EXPECT_LE(d.dc_solves, d.transient_solves + 3);
}

TEST(SolverPerf, ColdGuessCacheSkipsSettlingSolve) {
    sram::SramCell cell = make_cell();
    sram::program_hold(cell);
    la::Vector cold;

    const spice::SolverStats before1 = spice::solver_stats();
    const sram::HoldState hs0 = sram::solve_hold_state(
        cell, /*q_high=*/false, spice::SolverOptions{}, &cold);
    const spice::SolverStats d1 = metered_since(before1);
    ASSERT_TRUE(hs0.converged);
    ASSERT_TRUE(hs0.state_ok);
    EXPECT_EQ(d1.dc_solves, 2u); // cold settling + forced state
    EXPECT_EQ(cold.size(), cell.circuit.num_unknowns());

    const spice::SolverStats before2 = spice::solver_stats();
    const sram::HoldState hs1 = sram::solve_hold_state(
        cell, /*q_high=*/true, spice::SolverOptions{}, &cold);
    const spice::SolverStats d2 = metered_since(before2);
    ASSERT_TRUE(hs1.converged);
    ASSERT_TRUE(hs1.state_ok);
    EXPECT_EQ(d2.dc_solves, 1u); // settling solve replayed from the cache
}

// ------------------------------------------------- gmin-stepping runaway

TEST(GminStepping, ZeroGminTerminatesInBoundedStages) {
    spice::Circuit c = divider();
    spice::SolverOptions opts;
    opts.gmin = 0.0; // a valid request: solve with no shunt at all
    // Force the plain-Newton strategy (call index 0) to fail so the solve
    // falls through to gmin stepping; the stages themselves run normally.
    fault::ScopedFaultInjection inject("newton@0");
    const spice::SolverStats before = spice::solver_stats();
    const spice::DcResult r = solve_dc(c, opts);
    const spice::SolverStats d = metered_since(before);
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.strategy, "gmin-stepping");
    EXPECT_NEAR(spice::node_voltage(r.x, c.node("mid")), 0.75, 1e-6);
    // Pre-fix the relaxation loop's exact `g == gmin` test never fired for
    // gmin = 0: `g *= 0.1` only reaches 0.0 after ~320 stages of denormal
    // underflow, each a full warm-started Newton solve (~650 iterations).
    // The relative floor + stage cap bound it to ~13 stages.
    EXPECT_LT(d.nr_iterations, 100u);
    EXPECT_LT(r.iterations, 100);
}

// ------------------------------------------- breakpoint tolerance vs ulp

TEST(TransientBreakpoints, UlpSpacedBreakpointsDoNotForceMicroSteps) {
    // Two pulse edges at nominally the same instant, computed through
    // different floating-point paths: 0.3 and 0.1 + 0.2 differ by one ulp
    // (5.55e-17 s). Such twins arise whenever two sources derive the same
    // edge time from different arithmetic. Pre-fix, the absolute 1e-21 s
    // breakpoint tolerance — far below one ulp at 0.3 s — made the solver
    // land on the first twin, then take a one-ulp "step" to the second.
    const double b1 = 0.3;
    const double b2 = 0.1 + 0.2;
    ASSERT_NE(b1, b2); // the premise: distinct doubles, same nominal time

    spice::Circuit c;
    const spice::NodeId s1 = c.add_node("s1");
    const spice::NodeId n1 = c.add_node("n1");
    const spice::NodeId s2 = c.add_node("s2");
    const spice::NodeId n2 = c.add_node("n2");
    c.add_vsource("V1", s1, spice::kGround,
                  spice::Waveform::pulse(0.0, 1.0, b1, 1e-3, 1.0, 1e-3));
    c.add_vsource("V2", s2, spice::kGround,
                  spice::Waveform::pulse(0.0, 1.0, b2, 1e-3, 1.0, 1e-3));
    c.add_resistor("R1", s1, n1, 1e3);
    c.add_capacitor("C1", n1, spice::kGround, 1e-6);
    c.add_resistor("R2", s2, n2, 1e3);
    c.add_capacitor("C2", n2, spice::kGround, 1e-6);

    spice::SolverOptions opts;
    opts.dt_initial = 1e-6;
    opts.dt_max = 1e-2; // seconds-scale window needs ms-scale steps
    const spice::TransientResult tr = solve_transient(c, opts, 0.35);
    ASSERT_TRUE(tr.completed) << tr.message;

    // With the breakpoint tolerance relative to t, the twin breakpoints are
    // consumed together and every accepted step stays macroscopic. Pre-fix
    // the trace contains a 5.55e-17 s step between the twins.
    const std::vector<double>& t = tr.times();
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_GT(t[i] - t[i - 1], 1e-15)
            << "micro-step between samples " << i - 1 << " and " << i
            << " at t=" << t[i - 1];
    // The stimulus still arrived: both RC outputs charged up after the edge.
    EXPECT_GT(tr.final_voltage(n1), 0.9);
    EXPECT_GT(tr.final_voltage(n2), 0.9);
}

// --------------------------------------------- min_difference empty window

TEST(MinDifference, WindowBeyondTraceIsNaN) {
    spice::TransientResult tr;
    tr.append(0.0, la::Vector{1.0, 0.0});
    tr.append(1.0, la::Vector{1.0, 0.2});
    // Pre-fix a window disjoint from the trace returned +infinity (the min
    // over zero samples), which DRNM would report as an infinite margin.
    EXPECT_TRUE(std::isnan(tr.min_difference(1, 2, 2.0, 3.0)));
    EXPECT_TRUE(std::isnan(tr.min_difference(1, 2, -2.0, -1.0)));
}

TEST(MinDifference, EmptyTraceIsNaN) {
    const spice::TransientResult tr;
    EXPECT_TRUE(std::isnan(tr.min_difference(1, 2, 0.0, 1.0)));
}

TEST(MinDifference, InvertedWindowIsNaN) {
    spice::TransientResult tr;
    tr.append(0.0, la::Vector{1.0, 0.0});
    tr.append(1.0, la::Vector{1.0, 0.2});
    EXPECT_TRUE(std::isnan(tr.min_difference(1, 2, 0.8, 0.2)));
}

TEST(MinDifference, OverlappingWindowStillMeasures) {
    spice::TransientResult tr;
    tr.append(0.0, la::Vector{1.0, 0.0});
    tr.append(1.0, la::Vector{1.0, 0.5});
    tr.append(2.0, la::Vector{1.0, 0.0});
    EXPECT_NEAR(tr.min_difference(1, 2, 0.0, 2.0), 0.5, 1e-12);
    // A window covering only the trace's tail interpolates its edges.
    EXPECT_NEAR(tr.min_difference(1, 2, 1.5, 3.0), 0.75, 1e-12);
}

} // namespace
} // namespace tfetsram
