// DC solver tests: linear networks with known solutions, nonlinear devices
// (through the real transistor models), homotopy fallbacks, and power
// accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "device/models.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/report.hpp"
#include "spice/solution.hpp"

namespace tfetsram::spice {
namespace {

TEST(Dc, ResistorDivider) {
    Circuit c;
    const NodeId top = c.add_node("top");
    const NodeId mid = c.add_node("mid");
    c.add_vsource("V1", top, kGround, Waveform::dc(1.0));
    c.add_resistor("R1", top, mid, 1e3);
    c.add_resistor("R2", mid, kGround, 3e3);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(node_voltage(r.x, mid), 0.75, 1e-6);
}

TEST(Dc, CurrentSourceIntoResistor) {
    Circuit c;
    const NodeId n = c.add_node("n");
    c.add_isource("I1", kGround, n, Waveform::dc(1e-3)); // 1 mA into n
    c.add_resistor("R", n, kGround, 2e3);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(node_voltage(r.x, n), 2.0, 1e-6);
}

TEST(Dc, VoltageSourceBranchCurrent) {
    Circuit c;
    const NodeId n = c.add_node("n");
    auto& v = c.add_vsource("V1", n, kGround, Waveform::dc(2.0));
    c.add_resistor("R", n, kGround, 1e3);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    // 2 mA delivered into the circuit out of the + terminal.
    EXPECT_NEAR(v.delivered_current(r.x), 2e-3, 1e-9);
    EXPECT_NEAR(v.power(r.x), -4e-3, 1e-9); // delivers 4 mW
}

TEST(Dc, CapacitorIsOpenAtDc) {
    Circuit c;
    const NodeId a = c.add_node("a");
    const NodeId b = c.add_node("b");
    c.add_vsource("V1", a, kGround, Waveform::dc(1.0));
    c.add_resistor("R", a, b, 1e3);
    c.add_capacitor("C", b, kGround, 1e-12);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    // No DC path to ground except gmin: node floats to the source value.
    EXPECT_NEAR(node_voltage(r.x, b), 1.0, 1e-3);
}

TEST(Dc, SeriesVoltageSourcesStack) {
    Circuit c;
    const NodeId a = c.add_node("a");
    const NodeId b = c.add_node("b");
    c.add_vsource("V1", a, kGround, Waveform::dc(1.0));
    c.add_vsource("V2", b, a, Waveform::dc(0.5));
    c.add_resistor("R", b, kGround, 1e3);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(node_voltage(r.x, b), 1.5, 1e-6);
}

TEST(Dc, TimedSwitchConducts) {
    Circuit c;
    const NodeId a = c.add_node("a");
    const NodeId b = c.add_node("b");
    c.add_vsource("V1", a, kGround, Waveform::dc(1.0));
    c.add_switch("S", a, b, 10.0, 1e12, Waveform::dc(1.0));
    c.add_resistor("R", b, kGround, 10.0);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(node_voltage(r.x, b), 0.5, 1e-6);
}

TEST(Dc, TimedSwitchBlocks) {
    Circuit c;
    const NodeId a = c.add_node("a");
    const NodeId b = c.add_node("b");
    c.add_vsource("V1", a, kGround, Waveform::dc(1.0));
    c.add_switch("S", a, b, 10.0, 1e12, Waveform::dc(0.0));
    c.add_resistor("R", b, kGround, 10.0);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    EXPECT_LT(node_voltage(r.x, b), 1e-6);
}

// A diode-connected nMOS against a resistor: strongly nonlinear, solvable.
TEST(Dc, DiodeConnectedMosfetConverges) {
    Circuit c;
    const NodeId vdd = c.add_node("vdd");
    const NodeId d = c.add_node("d");
    c.add_vsource("V1", vdd, kGround, Waveform::dc(1.0));
    c.add_resistor("R", vdd, d, 1e4);
    c.add_transistor("M", device::make_nmos(), d, d, kGround, 1.0);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    const double v = node_voltage(r.x, d);
    EXPECT_GT(v, 0.3);
    EXPECT_LT(v, 1.0);
}

TEST(Dc, TfetInverterSwitches) {
    Circuit c;
    const NodeId vdd = c.add_node("vdd");
    const NodeId in = c.add_node("in");
    const NodeId out = c.add_node("out");
    c.add_vsource("Vdd", vdd, kGround, Waveform::dc(0.8));
    auto& vin = c.add_vsource("Vin", in, kGround, Waveform::dc(0.0));
    c.add_transistor("MP", device::make_ptfet(), out, in, vdd, 1.0);
    c.add_transistor("MN", device::make_ntfet(), out, in, kGround, 1.0);

    const DcResult low_in = solve_dc(c, {});
    ASSERT_TRUE(low_in.converged);
    EXPECT_GT(node_voltage(low_in.x, out), 0.75); // output high

    vin.set_waveform(Waveform::dc(0.8));
    const DcResult high_in = solve_dc(c, {});
    ASSERT_TRUE(high_in.converged);
    EXPECT_LT(node_voltage(high_in.x, out), 0.05); // output low
}

TEST(Dc, StaticPowerFromDeviceEquationsNotGmin) {
    // An off nTFET from 0.8 V to ground leaks ~1e-17 A * 0.8 V, far below
    // what the 1e-12 S gmin shunt would suggest. The device-side power
    // report must see the leakage, not the shunt.
    Circuit c;
    const NodeId vdd = c.add_node("vdd");
    c.add_vsource("V1", vdd, kGround, Waveform::dc(0.8));
    c.add_transistor("M", device::make_ntfet(), vdd, kGround, kGround, 1.0);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    const double p = static_power(c, r.x);
    EXPECT_GT(p, 1e-19);
    EXPECT_LT(p, 1e-15);
}

TEST(Dc, PowerReportBalances) {
    Circuit c;
    const NodeId n = c.add_node("n");
    c.add_vsource("V1", n, kGround, Waveform::dc(1.0));
    c.add_resistor("R", n, kGround, 1e3);
    const DcResult r = solve_dc(c, {});
    ASSERT_TRUE(r.converged);
    const PowerReport rep = power_report(c, r.x);
    EXPECT_NEAR(rep.dissipated, 1e-3, 1e-8);
    EXPECT_NEAR(rep.delivered_by_sources, 1e-3, 1e-8);
}

TEST(Dc, InitialGuessSelectsBistableState) {
    // Cross-coupled TFET inverter pair: two stable states; the initial
    // guess must select the basin.
    Circuit c;
    const NodeId vdd = c.add_node("vdd");
    const NodeId a = c.add_node("a");
    const NodeId b = c.add_node("b");
    c.add_vsource("Vdd", vdd, kGround, Waveform::dc(0.8));
    c.add_transistor("P1", device::make_ptfet(), a, b, vdd, 1.0);
    c.add_transistor("N1", device::make_ntfet(), a, b, kGround, 1.0);
    c.add_transistor("P2", device::make_ptfet(), b, a, vdd, 1.0);
    c.add_transistor("N2", device::make_ntfet(), b, a, kGround, 1.0);
    c.prepare();

    la::Vector guess(c.num_unknowns(), 0.0);
    guess[vdd - 1] = 0.8;
    guess[a - 1] = 0.8;
    guess[b - 1] = 0.0;
    const DcResult r1 = solve_dc(c, {}, 0.0, &guess);
    ASSERT_TRUE(r1.converged);
    EXPECT_GT(node_voltage(r1.x, a) - node_voltage(r1.x, b), 0.6);

    guess[a - 1] = 0.0;
    guess[b - 1] = 0.8;
    const DcResult r2 = solve_dc(c, {}, 0.0, &guess);
    ASSERT_TRUE(r2.converged);
    EXPECT_LT(node_voltage(r2.x, a) - node_voltage(r2.x, b), -0.6);
}

TEST(Circuit, NodeNamesRoundTrip) {
    Circuit c;
    const NodeId n = c.add_node("mynode");
    EXPECT_EQ(c.node("mynode"), n);
    EXPECT_EQ(c.node_name(n), "mynode");
    EXPECT_EQ(c.node("gnd"), kGround);
    EXPECT_THROW(static_cast<void>(c.node("missing")),
                 std::invalid_argument);
    EXPECT_THROW(c.add_node("mynode"), std::invalid_argument);
}

} // namespace
} // namespace tfetsram::spice
