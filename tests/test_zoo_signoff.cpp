// Zoo-wide qualification smoke: every registered cell-zoo entry must
// instantiate, hold both states, and clear the full signoff battery at
// one corner; the deck loader must round-trip the example 8T/9T netlists
// into working cells; and Monte-Carlo must run unchanged on a spec-built
// topology. This is the "any spec, same pipelines" contract of the
// topology-as-data refactor (ctest label: zoo).

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/signoff.hpp"
#include "device/model_zoo.hpp"
#include "mc/monte_carlo.hpp"
#include "sram/cell.hpp"
#include "sram/cell_spec.hpp"
#include "sram/cell_zoo.hpp"
#include "sram/metrics.hpp"
#include "sram/operations.hpp"

#ifndef TFETSRAM_SOURCE_DIR
#error "TFETSRAM_SOURCE_DIR must point at the repository root"
#endif

namespace tfetsram {
namespace {

TEST(ZooSignoff, EveryEntryInstantiatesAndHolds) {
    for (const sram::ZooEntry& entry : sram::cell_zoo()) {
        const device::ModelSetSpec& ms = device::find_model_set(entry.model_set);
        const device::ModelSet models = device::make_model_set_at(ms, 300.0);
        const sram::DesignSpec design = make_zoo_design(entry, 0.8, models);
        sram::SramCell cell = sram::build_cell(design.config);
        sram::program_hold(cell);
        const spice::SolverOptions opts;
        for (bool q_high : {false, true}) {
            const sram::HoldState hs =
                sram::solve_hold_state(cell, q_high, opts);
            EXPECT_TRUE(hs.converged) << entry.id << " q_high=" << q_high;
            EXPECT_TRUE(hs.state_ok) << entry.id << " q_high=" << q_high;
        }
    }
}

TEST(ZooSignoff, FullBatteryPassesAtNominalCorner) {
    core::SignoffConditions cond;
    cond.vdd_corners = {0.8};
    cond.temperature_corners = {300.0};
    cond.mc_samples = 0; // MC smoke is its own test below
    const core::SignoffRequirements req;

    const std::vector<core::SignoffReport>& reports =
        core::signoff_zoo(0.8, req, cond);
    ASSERT_EQ(reports.size(), sram::cell_zoo().size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const core::SignoffReport& rep = reports[i];
        const std::string& id = sram::cell_zoo()[i].id;
        // The CMOS baseline and the asymmetric cell exceed the TFET-class
        // hold-power budget by construction — that gap is the paper's
        // Sec. 5 result, so signoff must flag it (and nothing else).
        if (id == "cmos6t" || id == "asym6t") {
            EXPECT_FALSE(rep.passed()) << rep.to_text();
            for (const std::string& failure : rep.failures)
                EXPECT_NE(failure.find("static power"), std::string::npos)
                    << id << ": unexpected violation: " << failure;
        } else {
            EXPECT_TRUE(rep.passed()) << rep.to_text();
        }
        ASSERT_EQ(rep.corners.size(), 1u) << rep.design_name;
        const core::CornerRow& row = rep.corners.front();
        EXPECT_TRUE(std::isfinite(row.drnm)) << rep.design_name;
        EXPECT_TRUE(std::isfinite(row.static_power)) << rep.design_name;
    }
}

TEST(ZooSignoff, McRunsOnSpecBuiltTopology) {
    const device::ModelSet models = device::make_model_set({}, true);
    const sram::DesignSpec design = sram::tfet8t_design(0.8, models);
    const mc::TfetVariationSampler sampler{mc::VariationSpec{}};
    const mc::McResult res = mc::run_monte_carlo(
        design.config, sampler, 4, 17, [](sram::SramCell& cell) {
            const auto d = sram::dynamic_read_noise_margin(cell);
            return d.valid && !d.flipped ? d.drnm : 0.0;
        });
    ASSERT_EQ(res.samples.size(), 4u);
    EXPECT_EQ(res.n_censored, 0u);
    for (double s : res.samples)
        EXPECT_GT(s, 0.0);
}

class DeckLoader : public ::testing::TestWithParam<const char*> {};

TEST_P(DeckLoader, ExampleDeckRoundTrips) {
    const std::string path = std::string(TFETSRAM_SOURCE_DIR) +
                             "/examples/netlists/" + GetParam() + ".sp";
    const sram::CellSpec spec = sram::load_cell_spec(path);
    EXPECT_EQ(spec.id, GetParam());
    EXPECT_EQ(spec.read_style, sram::ReadStyle::kReadPort);

    sram::CellConfig cfg;
    cfg.spec = &spec;
    cfg.models = device::make_model_set({}, true);
    sram::SramCell cell = sram::build_cell(cfg);
    EXPECT_NE(cell.v_rwl, nullptr);
    EXPECT_NE(cell.v_rbl, nullptr);
    EXPECT_NE(cell.sw_rbl, nullptr);

    sram::program_hold(cell);
    const spice::SolverOptions opts;
    for (bool q_high : {false, true}) {
        const sram::HoldState hs = sram::solve_hold_state(cell, q_high, opts);
        EXPECT_TRUE(hs.converged) << GetParam() << " q_high=" << q_high;
        EXPECT_TRUE(hs.state_ok) << GetParam() << " q_high=" << q_high;
    }
    const sram::DrnmResult dr = sram::dynamic_read_noise_margin(cell);
    EXPECT_TRUE(dr.valid) << GetParam();
    EXPECT_FALSE(dr.flipped) << GetParam();
    EXPECT_GT(dr.drnm, 0.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ExampleNetlists, DeckLoader,
                         ::testing::Values("tfet_sram_8t", "tfet_sram_9t"),
                         [](const ::testing::TestParamInfo<const char*>& tpi) {
                             return std::string(tpi.param);
                         });

} // namespace
} // namespace tfetsram
