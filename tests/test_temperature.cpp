// Temperature-dependence tests: the TFET's swing and leakage barely move
// with temperature while the MOSFET's kT/q physics degrades both — the
// second pillar (after steep swing) of the TFET low-power story.

#include <gtest/gtest.h>

#include <cmath>

#include "device/models.hpp"
#include "device/table_builder.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"

namespace tfetsram::device {
namespace {

double mosfet_swing(double temperature) {
    MosfetParams p;
    p.temperature = temperature;
    const MosfetModel m(p);
    const double i1 = m.iv(0.10, 0.8).ids;
    const double i2 = m.iv(0.20, 0.8).ids;
    return 0.1 / std::log10(i2 / i1);
}

double tfet_swing(double temperature) {
    TfetParams p;
    p.temperature = temperature;
    const TfetModel m(p);
    const double i1 = m.iv(0.05, 0.8).ids;
    const double i2 = m.iv(0.15, 0.8).ids;
    return 0.1 / std::log10(i2 / i1);
}

TEST(Temperature, MosfetSwingScalesWithKt) {
    const double s300 = mosfet_swing(300.0);
    const double s400 = mosfet_swing(400.0);
    EXPECT_NEAR(s400 / s300, 400.0 / 300.0, 0.05);
}

TEST(Temperature, TfetSwingNearlyTemperatureIndependent) {
    const double s300 = tfet_swing(300.0);
    const double s400 = tfet_swing(400.0);
    EXPECT_NEAR(s400 / s300, 1.0, 0.05);
}

TEST(Temperature, MosfetLeakageExplodesTfetBarelyMoves) {
    MosfetParams mp;
    const double i_mos_300 = MosfetModel(mp).iv(0.0, 0.8).ids;
    mp.temperature = 400.0;
    const double i_mos_400 = MosfetModel(mp).iv(0.0, 0.8).ids;
    // kT/q swing + VT shift: orders of magnitude at 100 K delta.
    EXPECT_GT(i_mos_400 / i_mos_300, 50.0);

    TfetParams tp;
    const double i_tfet_300 = TfetModel(tp).iv(0.0, 0.8).ids;
    tp.temperature = 400.0;
    const double i_tfet_400 = TfetModel(tp).iv(0.0, 0.8).ids;
    EXPECT_LT(i_tfet_400 / i_tfet_300, 2.0);
}

TEST(Temperature, PinDiodeThermallyActivated) {
    TfetParams tp;
    const double i_300 = -TfetModel(tp).iv(0.0, -0.6).ids;
    tp.temperature = 350.0;
    const double i_350 = -TfetModel(tp).iv(0.0, -0.6).ids;
    EXPECT_GT(i_350 / i_300, 50.0) << "junction leakage must be activated";
}

TEST(Temperature, OnCurrentsShiftGently) {
    TfetParams tp;
    tp.temperature = 400.0;
    const double ion = TfetModel(tp).iv(1.0, 1.0).ids;
    EXPECT_NEAR(ion, 1.2e-4, 0.15e-4); // +20 % from bandgap narrowing

    // MOSFET: below the zero-temperature-coefficient gate voltage the VT
    // shift wins (current rises with T); at high overdrive mobility
    // degradation wins (current falls) — both classic behaviours.
    MosfetParams mp;
    mp.temperature = 400.0;
    const MosfetModel hot(mp);
    const MosfetModel cold{MosfetParams{}};
    EXPECT_GT(hot.iv(0.7, 0.8).ids, cold.iv(0.7, 0.8).ids)
        << "below ZTC: VT shift dominates";
    EXPECT_LT(hot.iv(1.2, 0.8).ids, cold.iv(1.2, 0.8).ids)
        << "above ZTC: mobility degradation dominates";
}

TEST(Temperature, CellStaticPowerContrast) {
    // The system-level consequence: at 400 K the CMOS cell's leakage grows
    // by orders of magnitude while the TFET cell barely moves, widening
    // the paper's 6-order gap.
    auto cell_power = [](bool tfet, double temperature) {
        TfetParams tp;
        tp.temperature = temperature;
        MosfetParams nmos;
        nmos.temperature = temperature;
        MosfetParams pmos = pmos_defaults();
        pmos.temperature = temperature;
        ModelSet set;
        set.ntfet = build_table(*make_ntfet(tp));
        set.ptfet = build_table(*make_ptfet(tp));
        set.nmos = make_nmos(nmos);
        set.pmos = make_pmos(pmos);
        sram::CellConfig cfg = tfet
                                   ? sram::proposed_design(0.8, set).config
                                   : sram::cmos_design(0.8, set).config;
        sram::SramCell cell = sram::build_cell(cfg);
        return sram::worst_hold_static_power(cell, {});
    };
    const double p_tfet_300 = cell_power(true, 300.0);
    const double p_tfet_400 = cell_power(true, 400.0);
    const double p_cmos_300 = cell_power(false, 300.0);
    const double p_cmos_400 = cell_power(false, 400.0);
    EXPECT_LT(p_tfet_400 / p_tfet_300, 3.0);
    EXPECT_GT(p_cmos_400 / p_cmos_300, 30.0);
}

} // namespace
} // namespace tfetsram::device
