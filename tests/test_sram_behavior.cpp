// The paper's circuit-level claims, encoded as tests. These run full
// transient simulations with the tabulated device models (the paper's
// flow), so they are the slowest tests in the suite — but they are the
// reproduction's ground truth.

#include <gtest/gtest.h>

#include <cmath>

#include "sram/designs.hpp"
#include "sram/metrics.hpp"

namespace tfetsram::sram {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

SramCell tfet6t(AccessDevice access, double beta, double vdd = 0.8) {
    CellConfig cfg;
    cfg.kind = CellKind::kTfet6T;
    cfg.access = access;
    cfg.beta = beta;
    cfg.vdd = vdd;
    cfg.models = models();
    return build_cell(cfg);
}

SramCell cmos6t(double beta = 1.5) {
    CellConfig cfg;
    cfg.kind = CellKind::kCmos6T;
    cfg.access = AccessDevice::kCmos;
    cfg.beta = beta;
    cfg.models = models();
    return build_cell(cfg);
}

const MetricOptions kOpts{};

// ---- Sec. 3: static power ----

TEST(Sec3StaticPower, InwardCellsLeakAttowatts) {
    for (AccessDevice a : {AccessDevice::kInwardN, AccessDevice::kInwardP}) {
        SramCell cell = tfet6t(a, 1.0);
        const double p = worst_hold_static_power(cell, kOpts);
        EXPECT_GT(p, 1e-18) << to_string(a);
        EXPECT_LT(p, 1e-16) << to_string(a);
    }
}

TEST(Sec3StaticPower, OutwardAccessCatastrophic) {
    // "5 and 9 orders of magnitude higher static power ... at 0.6V and
    // 0.8V" — the access transistor on the 0-storing side is reverse
    // biased through the whole hold.
    for (double vdd : {0.6, 0.8}) {
        SramCell in = tfet6t(AccessDevice::kInwardP, 1.0, vdd);
        SramCell out = tfet6t(AccessDevice::kOutwardN, 1.0, vdd);
        const double p_in = worst_hold_static_power(in, kOpts);
        const double p_out = worst_hold_static_power(out, kOpts);
        const double orders = std::log10(p_out / p_in);
        if (vdd == 0.6) {
            EXPECT_GT(orders, 4.0);
            EXPECT_LT(orders, 8.0);
        } else {
            EXPECT_GT(orders, 8.0);
            EXPECT_LT(orders, 11.0);
        }
    }
}

TEST(Sec3StaticPower, TfetBeatsCmosBySixOrders) {
    // The headline claim: 6-7 orders of magnitude lower static power than
    // the 32 nm CMOS cell.
    SramCell tfet = tfet6t(AccessDevice::kInwardP, 0.6);
    SramCell cmos = cmos6t();
    const double p_tfet = worst_hold_static_power(tfet, kOpts);
    const double p_cmos = worst_hold_static_power(cmos, kOpts);
    const double orders = std::log10(p_cmos / p_tfet);
    EXPECT_GT(orders, 5.0);
    EXPECT_LT(orders, 8.0);
}

// ---- Sec. 3: cell stability ----

TEST(Sec3Stability, InwardNtfetCannotWrite) {
    // "the WLcrit is infinite for all beta" for inward nTFET access.
    for (double beta : {0.4, 1.0}) {
        SramCell cell = tfet6t(AccessDevice::kInwardN, beta);
        EXPECT_TRUE(std::isinf(critical_wordline_pulse(cell, Assist::kNone,
                                                       kOpts)))
            << "beta=" << beta;
    }
}

TEST(Sec3Stability, InwardPtfetWritesForSmallBeta) {
    // "... and [infinite] for beta > 1 for inward pTFET".
    SramCell small = tfet6t(AccessDevice::kInwardP, 0.6);
    const double wl_small =
        critical_wordline_pulse(small, Assist::kNone, kOpts);
    EXPECT_TRUE(std::isfinite(wl_small));
    EXPECT_LT(wl_small, 500e-12);

    SramCell large = tfet6t(AccessDevice::kInwardP, 1.3);
    EXPECT_TRUE(std::isinf(
        critical_wordline_pulse(large, Assist::kNone, kOpts)));
}

TEST(Sec3Stability, WlcritGrowsWithBeta) {
    double prev = 0.0;
    for (double beta : {0.4, 0.6, 0.8, 1.0}) {
        SramCell cell = tfet6t(AccessDevice::kInwardP, beta);
        const double wl = critical_wordline_pulse(cell, Assist::kNone, kOpts);
        ASSERT_TRUE(std::isfinite(wl)) << "beta=" << beta;
        EXPECT_GT(wl, prev) << "beta=" << beta;
        prev = wl;
    }
}

TEST(Sec3Stability, DrnmGrowsWithBeta) {
    // Larger pull-downs resist the read disturb (Fig. 4a).
    SramCell small = tfet6t(AccessDevice::kInwardP, 0.6);
    SramCell large = tfet6t(AccessDevice::kInwardP, 1.5);
    const DrnmResult d_small =
        dynamic_read_noise_margin(small, Assist::kNone, kOpts);
    const DrnmResult d_large =
        dynamic_read_noise_margin(large, Assist::kNone, kOpts);
    ASSERT_TRUE(d_small.valid);
    ASSERT_TRUE(d_large.valid);
    EXPECT_GT(d_large.drnm, d_small.drnm + 0.1);
    EXPECT_FALSE(d_large.flipped);
}

TEST(Sec3Stability, WriteSizedCellCannotReadUnassisted) {
    // The central tension of the paper: beta sized for write (0.6) loses
    // the read. This is why a read assist is required at all.
    SramCell cell = tfet6t(AccessDevice::kInwardP, 0.6);
    const DrnmResult d = dynamic_read_noise_margin(cell, Assist::kNone, kOpts);
    ASSERT_TRUE(d.valid);
    EXPECT_TRUE(d.flipped || d.drnm < 0.05);
}

TEST(Sec3Stability, CmosWritesAtAnyBeta) {
    // Bidirectional access transistors: both sides conduct during a CMOS
    // write (Fig. 5a/b), so WLcrit stays finite and small even at beta
    // values that kill the TFET cell.
    for (double beta : {0.6, 1.5, 3.0}) {
        SramCell cell = cmos6t(beta);
        const double wl = critical_wordline_pulse(cell, Assist::kNone, kOpts);
        ASSERT_TRUE(std::isfinite(wl)) << "beta=" << beta;
        EXPECT_LT(wl, 300e-12) << "beta=" << beta;
    }
}

TEST(Sec3Stability, BetaAffectsTfetMoreThanCmos) {
    // "the value of beta has a much larger effect on the 6T TFET SRAM
    // than the 6T CMOS SRAM."
    SramCell t1 = tfet6t(AccessDevice::kInwardP, 0.4);
    SramCell t2 = tfet6t(AccessDevice::kInwardP, 1.0);
    SramCell c1 = cmos6t(0.4);
    SramCell c2 = cmos6t(1.0);
    const double t_ratio =
        critical_wordline_pulse(t2, Assist::kNone, kOpts) /
        critical_wordline_pulse(t1, Assist::kNone, kOpts);
    const double c_ratio =
        critical_wordline_pulse(c2, Assist::kNone, kOpts) /
        critical_wordline_pulse(c1, Assist::kNone, kOpts);
    EXPECT_GT(t_ratio, 2.0 * c_ratio);
}

// ---- Sec. 4: assists ----

TEST(Sec4WriteAssist, GndRaisingWorksAtAllBeta) {
    double prev = 0.0;
    for (double beta : {1.5, 2.0, 3.0}) {
        SramCell cell = tfet6t(AccessDevice::kInwardP, beta);
        const double wl =
            critical_wordline_pulse(cell, Assist::kWaGndRaising, kOpts);
        ASSERT_TRUE(std::isfinite(wl)) << "beta=" << beta;
        EXPECT_GT(wl, prev);
        prev = wl;
    }
}

TEST(Sec4WriteAssist, AccessAssistsBestAtLowBetaOnly) {
    // Fig. 6(e): wordline lowering / bitline raising beat the rail assists
    // at low beta but their advantage vanishes as beta grows.
    SramCell low = tfet6t(AccessDevice::kInwardP, 1.5);
    const double gnd_low =
        critical_wordline_pulse(low, Assist::kWaGndRaising, kOpts);
    SramCell low2 = tfet6t(AccessDevice::kInwardP, 1.5);
    const double wlb_low =
        critical_wordline_pulse(low2, Assist::kWaWordlineLowering, kOpts);
    EXPECT_LT(wlb_low, gnd_low) << "access assist should win at beta=1.5";

    SramCell hi = tfet6t(AccessDevice::kInwardP, 3.0);
    const double gnd_hi =
        critical_wordline_pulse(hi, Assist::kWaGndRaising, kOpts);
    SramCell hi2 = tfet6t(AccessDevice::kInwardP, 3.0);
    const double wlb_hi =
        critical_wordline_pulse(hi2, Assist::kWaWordlineLowering, kOpts);
    EXPECT_GT(wlb_hi, gnd_hi) << "rail assist should win at beta=3";
}

TEST(Sec4ReadAssist, GndLoweringRescuesWriteSizedCell) {
    // The paper's conclusion: beta ~ 0.6 + GND-lowering RA gives both
    // operations.
    SramCell cell = tfet6t(AccessDevice::kInwardP, 0.6);
    const DrnmResult bare =
        dynamic_read_noise_margin(cell, Assist::kNone, kOpts);
    const DrnmResult assisted =
        dynamic_read_noise_margin(cell, Assist::kRaGndLowering, kOpts);
    ASSERT_TRUE(assisted.valid);
    EXPECT_FALSE(assisted.flipped);
    EXPECT_GT(assisted.drnm, 0.3);
    EXPECT_GT(assisted.drnm, bare.drnm + 0.2);
}

TEST(Sec4ReadAssist, AllFourImproveReads) {
    SramCell bare_cell = tfet6t(AccessDevice::kInwardP, 0.6);
    const double bare =
        dynamic_read_noise_margin(bare_cell, Assist::kNone, kOpts).drnm;
    for (Assist a : kReadAssists) {
        SramCell cell = tfet6t(AccessDevice::kInwardP, 0.6);
        const DrnmResult d = dynamic_read_noise_margin(cell, a, kOpts);
        ASSERT_TRUE(d.valid) << to_string(a);
        EXPECT_GT(d.drnm, bare) << to_string(a);
        EXPECT_FALSE(d.flipped) << to_string(a);
    }
}

// ---- Sec. 5: design comparison spot checks ----

TEST(Sec5Comparison, ProposedDesignMeetsBothMargins) {
    const DesignSpec d = proposed_design(0.8, models());
    SramCell cell = build_cell(d.config);
    const double wl = critical_wordline_pulse(cell, d.write_assist, kOpts);
    EXPECT_TRUE(std::isfinite(wl));
    EXPECT_LT(wl, 400e-12);
    const DrnmResult dr = dynamic_read_noise_margin(cell, d.read_assist, kOpts);
    ASSERT_TRUE(dr.valid);
    EXPECT_FALSE(dr.flipped);
    EXPECT_GT(dr.drnm, 0.3);
}

TEST(Sec5Comparison, CmosWritesFasterThanTfet) {
    // "the 6T CMOS SRAM has smaller [write] delay than all the TFET SRAMs
    // over most VDD" — bidirectional conduction.
    const DesignSpec dt = proposed_design(0.8, models());
    const DesignSpec dc = cmos_design(0.8, models());
    SramCell tfet = build_cell(dt.config);
    SramCell cmos = build_cell(dc.config);
    const double td_t = write_delay(tfet, dt.write_assist, kOpts);
    const double td_c = write_delay(cmos, dc.write_assist, kOpts);
    ASSERT_FALSE(std::isnan(td_t));
    ASSERT_FALSE(std::isnan(td_c));
    EXPECT_LT(td_c, td_t);
}

TEST(Sec5Comparison, SevenTReadIsNonDisturbing) {
    // The separate read port decouples the storage nodes: DRNM equals the
    // hold margin, the highest of all TFET designs at nominal VDD.
    const DesignSpec d7 = tfet7t_design(0.8, models());
    SramCell cell = build_cell(d7.config);
    const DrnmResult d = dynamic_read_noise_margin(cell, d7.read_assist, kOpts);
    ASSERT_TRUE(d.valid);
    EXPECT_FALSE(d.flipped);
    EXPECT_GT(d.drnm, 0.7);
}

TEST(Sec5Comparison, SevenTReadsAndWrites) {
    const DesignSpec d7 = tfet7t_design(0.8, models());
    SramCell cell = build_cell(d7.config);
    const double wl = critical_wordline_pulse(cell, d7.write_assist, kOpts);
    EXPECT_TRUE(std::isfinite(wl));
    const double rd = read_delay(cell, d7.read_assist, kOpts);
    EXPECT_FALSE(std::isnan(rd));
    EXPECT_GT(rd, 0.0);
}

TEST(Sec5Comparison, AsymmetricCellStaticPowerPenalty) {
    // "4 orders of magnitude [more static power] at VDD = 0.5V" unless the
    // bitlines float.
    const device::ModelSet& m = models();
    SramCell prop = build_cell(proposed_design(0.5, m).config);
    SramCell asym = build_cell(asym6t_design(0.5, m).config);
    const double p_prop = worst_hold_static_power(prop, kOpts);
    const double p_asym = worst_hold_static_power(asym, kOpts);
    const double orders = std::log10(p_asym / p_prop);
    EXPECT_GT(orders, 3.0);
    EXPECT_LT(orders, 6.0);
}

TEST(Sec5Comparison, AsymmetricCellWritesItsPolarity) {
    const DesignSpec da = asym6t_design(0.8, models());
    SramCell cell = build_cell(da.config);
    const WriteOutcome out = attempt_write(cell, 800e-12, da.write_assist, kOpts);
    EXPECT_TRUE(out.simulated);
    EXPECT_TRUE(out.flipped);
}

TEST(Sec5Comparison, SevenTStaticPowerAsLowAsProposed) {
    // "the 6T inpTFET SRAM with lowering RA and the 7T TFET SRAM consume
    // the same static power" — the 7T write bitlines idle at 0.
    const device::ModelSet& m = models();
    SramCell prop = build_cell(proposed_design(0.8, m).config);
    SramCell seven = build_cell(tfet7t_design(0.8, m).config);
    const double p_prop = worst_hold_static_power(prop, kOpts);
    const double p_seven = worst_hold_static_power(seven, kOpts);
    EXPECT_LT(std::fabs(std::log10(p_seven / p_prop)), 1.0);
}

} // namespace
} // namespace tfetsram::sram
