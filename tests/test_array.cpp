// Array-level tests: construction, initialization, functional write/read
// sequences, data retention of unaccessed cells, half-select behaviour,
// and a march-style pattern sweep.

#include <gtest/gtest.h>

#include <limits>

#include "array/array.hpp"
#include "spice/solve_error.hpp"
#include "sram/designs.hpp"

namespace tfetsram::array {
namespace {

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

ArrayConfig proposed_array(std::size_t rows, std::size_t cols) {
    ArrayConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.cell = sram::proposed_design(0.8, models()).config;
    cfg.read_assist = sram::Assist::kRaGndLowering;
    return cfg;
}

std::vector<std::vector<bool>> pattern(std::size_t rows, std::size_t cols,
                                       bool checker) {
    std::vector<std::vector<bool>> d(rows, std::vector<bool>(cols, false));
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            d[r][c] = checker ? ((r + c) % 2 == 0) : false;
    return d;
}

TEST(Array, BuildsExpectedTopology) {
    SramArray arr(proposed_array(3, 2));
    EXPECT_EQ(arr.rows(), 3u);
    EXPECT_EQ(arr.cols(), 2u);
    EXPECT_EQ(arr.circuit().transistors().size(), 3u * 2u * 6u);
}

TEST(Array, InitializeEstablishesPattern) {
    SramArray arr(proposed_array(3, 2));
    const auto data = pattern(3, 2, true);
    ASSERT_TRUE(arr.initialize(data));
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c) {
            EXPECT_EQ(arr.stored(r, c), data[r][c]) << r << "," << c;
            EXPECT_GT(arr.separation(r, c), 0.7);
        }
}

TEST(Array, WriteFlipsOnlyTheTarget) {
    SramArray arr(proposed_array(3, 2));
    ASSERT_TRUE(arr.initialize(pattern(3, 2, false))); // all zero
    const OpResult res = arr.write(1, 0, true);
    ASSERT_TRUE(res.ok) << res.message;
    EXPECT_TRUE(arr.stored(1, 0));
    // Everyone else still holds 0 — including the half-selected (1,1).
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c) {
            if (r == 1 && c == 0)
                continue;
            EXPECT_FALSE(arr.stored(r, c)) << r << "," << c;
            EXPECT_GT(arr.separation(r, c), 0.7) << r << "," << c;
        }
}

TEST(Array, ReadReturnsStoredValueNonDestructively) {
    SramArray arr(proposed_array(2, 2));
    std::vector<std::vector<bool>> data = {{true, false}, {false, true}};
    ASSERT_TRUE(arr.initialize(data));
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c) {
            const ReadResult res = arr.read(r, c);
            ASSERT_TRUE(res.ok) << res.message;
            EXPECT_EQ(res.value, data[r][c]) << r << "," << c;
            // Non-destructive: data intact afterwards.
            EXPECT_EQ(arr.stored(r, c), data[r][c]);
        }
}

TEST(Array, HalfSelectProtectedBySegmentedGround) {
    // The paper's Sec. 4.3 drawback: at beta = 0.6 a half-selected cell
    // sees a read-disturb. With per-column segmented virtual grounds ([7]
    // in the paper), the GND-lowering assist protects the unselected
    // columns while the written column keeps its nominal ground.
    ArrayConfig cfg = proposed_array(1, 2); // read_assist = GND lowering
    SramArray arr(cfg);
    ASSERT_TRUE(arr.initialize({{false, false}}));
    const OpResult res = arr.write(0, 0, true);
    ASSERT_TRUE(res.ok) << res.message;
    EXPECT_FALSE(arr.stored(0, 1)) << "half-selected cell must hold its 0";
    EXPECT_GT(arr.separation(0, 1), 0.7);
}

TEST(Array, HalfSelectHazardWithoutAssist) {
    // Without the protecting assist, the half-selected cell at beta = 0.6
    // is in exactly the unassisted-read condition that flips (Fig. 7e's
    // "no assist" row). This documents the hazard the paper warns about.
    ArrayConfig cfg = proposed_array(1, 2);
    cfg.read_assist = sram::Assist::kNone;
    SramArray arr(cfg);
    ASSERT_TRUE(arr.initialize({{false, false}}));
    const OpResult res = arr.write(0, 0, true);
    ASSERT_TRUE(res.message.empty() || res.ok) << res.message;
    // The half-selected (0,1) flips or at least loses most of its margin.
    const bool disturbed =
        arr.stored(0, 1) != false || arr.separation(0, 1) < 0.4;
    EXPECT_TRUE(disturbed)
        << "expected the unprotected half-selected cell to be disturbed";
}

TEST(Array, WriteAssistNotRequiredNote) {
    // The array's write_assist knob accepts read assists deliberately: the
    // paper's design applies GND lowering on every row access. A write
    // assist is also accepted for completeness.
    ArrayConfig cfg = proposed_array(1, 1);
    cfg.write_assist = sram::Assist::kWaGndRaising;
    SramArray arr(cfg);
    ASSERT_TRUE(arr.initialize({{false}}));
    const OpResult res = arr.write(0, 0, true);
    EXPECT_TRUE(res.ok) << res.message;
}

TEST(Array, MarchLikePatternSweep) {
    // March element: ascending write 1 + read back, then descending write
    // 0 + read back — a functional screen across every cell.
    SramArray arr(proposed_array(2, 2));
    ASSERT_TRUE(arr.initialize(pattern(2, 2, false)));
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c) {
            ASSERT_TRUE(arr.write(r, c, true).ok) << r << "," << c;
            const ReadResult rd = arr.read(r, c);
            ASSERT_TRUE(rd.ok && rd.value) << r << "," << c;
        }
    for (std::size_t r = 2; r-- > 0;)
        for (std::size_t c = 2; c-- > 0;) {
            ASSERT_TRUE(arr.write(r, c, false).ok) << r << "," << c;
            const ReadResult rd = arr.read(r, c);
            ASSERT_TRUE(rd.ok && !rd.value) << r << "," << c;
        }
}

TEST(Array, CmosArrayWorksWithoutAssists) {
    ArrayConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.cell = sram::cmos_design(0.8, models()).config;
    SramArray arr(cfg);
    ASSERT_TRUE(arr.initialize(pattern(2, 2, true)));
    const OpResult w = arr.write(0, 1, true);
    ASSERT_TRUE(w.ok) << w.message;
    const ReadResult rd = arr.read(0, 1);
    EXPECT_TRUE(rd.ok && rd.value);
    // Checker neighbours untouched: (1,0) held its 0, (1,1) its 1.
    EXPECT_FALSE(arr.stored(1, 0));
    EXPECT_TRUE(arr.stored(1, 1));
}

TEST(Array, RejectsUnsupportedTopology) {
    ArrayConfig cfg = proposed_array(1, 1);
    cfg.cell.kind = sram::CellKind::kTfet7T;
    EXPECT_THROW(SramArray{cfg}, contract_violation);
}

TEST(Array, RejectsDegenerateConfigs) {
    auto expect_invalid = [](ArrayConfig cfg, const char* what) {
        try {
            const SramArray arr(cfg);
            FAIL() << what << " must be rejected";
        } catch (const spice::SolveException& e) {
            EXPECT_EQ(e.error().code, spice::SolveErrorCode::kInvalidConfig)
                << what;
            EXPECT_NE(e.error().message.find("ArrayConfig"),
                      std::string::npos)
                << what;
        }
    };
    ArrayConfig cfg = proposed_array(2, 2);

    ArrayConfig bad = cfg;
    bad.rows = 0;
    expect_invalid(bad, "rows = 0");
    bad = cfg;
    bad.cols = 0;
    expect_invalid(bad, "cols = 0");
    bad = cfg;
    bad.c_bitline_per_row = 0.0;
    expect_invalid(bad, "zero bitline cap");
    bad = cfg;
    bad.c_bitline_per_row = -2e-15;
    expect_invalid(bad, "negative bitline cap");
    bad = cfg;
    bad.c_bitline_per_row = std::numeric_limits<double>::quiet_NaN();
    expect_invalid(bad, "NaN bitline cap");
    bad = cfg;
    bad.cell.vdd = 0.0;
    expect_invalid(bad, "zero supply");
    bad = cfg;
    bad.write_pulse = 0.0;
    expect_invalid(bad, "zero write pulse");
    bad = cfg;
    bad.read_duration = -1e-12;
    expect_invalid(bad, "negative read duration");
    bad = cfg;
    bad.sense_margin = -0.1;
    expect_invalid(bad, "negative sense margin");

    // validate_config is also callable directly (the mixed-level engine
    // shares it) and accepts the nominal configuration.
    EXPECT_NO_THROW(validate_config(cfg));
}

} // namespace
} // namespace tfetsram::array
