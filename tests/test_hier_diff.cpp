// Mixed-vs-flat differential harness: on arrays small enough for the flat
// whole-array driver to serve as reference (up to 16x8), the mixed-level
// engine must reproduce operation outcomes (ok/value), storage-node
// separations, and read differentials — and its promotion/demotion/
// relinearization counters must be exactly the deterministic values the
// partition rules imply. This is the drift detector for everything the
// mixed engine approximates (latched linearization, per-operation
// partition rebuild) and for the timing constants both engines must share.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "array/array.hpp"
#include "hier/mixed_array.hpp"
#include "sram/designs.hpp"

namespace tfetsram::hier {
namespace {

// Storage-node separations: latched extraction points vs the flat
// aftermath of a transient — both hold states at the same bias.
constexpr double kSeparationTol = 0.02; // [V]
// Read differential: lumped linear leakage vs N device-level cells on a
// floating bitline.
constexpr double kDifferentialTol = 0.05; // [V]

const device::ModelSet& models() {
    static const device::ModelSet set = device::make_model_set();
    return set;
}

array::ArrayConfig proposed_array(std::size_t rows, std::size_t cols) {
    array::ArrayConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.cell = sram::proposed_design(0.8, models()).config;
    cfg.read_assist = sram::Assist::kRaGndLowering;
    return cfg;
}

std::vector<std::vector<bool>> checker(std::size_t rows, std::size_t cols) {
    std::vector<std::vector<bool>> d(rows, std::vector<bool>(cols, false));
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            d[r][c] = (r + c) % 2 == 0;
    return d;
}

void expect_same_contents(array::SramArray& flat, MixedArray& mixed,
                          const char* where) {
    for (std::size_t r = 0; r < flat.rows(); ++r)
        for (std::size_t c = 0; c < flat.cols(); ++c) {
            EXPECT_EQ(flat.stored(r, c), mixed.stored(r, c))
                << where << " (" << r << "," << c << ")";
            EXPECT_NEAR(flat.separation(r, c), mixed.separation(r, c),
                        kSeparationTol)
                << where << " (" << r << "," << c << ")";
        }
}

TEST(HierDiff, WriteMatchesFlatOn8x4) {
    const array::ArrayConfig cfg = proposed_array(8, 4);
    array::SramArray flat(cfg);
    MixedArray mixed(cfg);
    const auto data = checker(8, 4);
    ASSERT_TRUE(flat.initialize(data));
    ASSERT_TRUE(mixed.initialize(data));
    expect_same_contents(flat, mixed, "after init");

    // Flip a 0 cell to 1 and a 1 cell to 0.
    const std::tuple<std::size_t, std::size_t, bool> flips[] = {
        {3, 0, false}, {4, 2, true}};
    for (const auto& [row, col, value] : flips) {
        const array::OpResult fr = flat.write(row, col, value);
        const array::OpResult mr = mixed.write(row, col, value);
        ASSERT_TRUE(fr.ok) << fr.message;
        ASSERT_TRUE(mr.ok) << mr.message;
        EXPECT_DOUBLE_EQ(fr.duration, mr.duration);
        expect_same_contents(flat, mixed, "after write");
    }
}

TEST(HierDiff, ReadMatchesFlatOn8x4) {
    const array::ArrayConfig cfg = proposed_array(8, 4);
    array::SramArray flat(cfg);
    MixedArray mixed(cfg);
    const auto data = checker(8, 4);
    ASSERT_TRUE(flat.initialize(data));
    ASSERT_TRUE(mixed.initialize(data));

    // One read per stored polarity, in the middle and at the edges.
    const std::size_t coords[][2] = {{0, 0}, {0, 1}, {3, 2}, {7, 3}};
    for (const auto& rc : coords) {
        const array::ReadResult fr = flat.read(rc[0], rc[1]);
        const array::ReadResult mr = mixed.read(rc[0], rc[1]);
        ASSERT_TRUE(fr.ok) << fr.message;
        ASSERT_TRUE(mr.ok) << mr.message;
        EXPECT_EQ(fr.value, mr.value) << rc[0] << "," << rc[1];
        EXPECT_EQ(fr.value, data[rc[0]][rc[1]]);
        EXPECT_NEAR(fr.differential, mr.differential, kDifferentialTol)
            << rc[0] << "," << rc[1];
        expect_same_contents(flat, mixed, "after read");
    }
}

// Satellite: half-select coverage under the mixed engine. A write to one
// column promotes every half-selected cell on the asserted row to SPICE
// level (they experience the pseudo-read disturb at device level, exactly
// like the flat reference), and their stored data survives in both.
TEST(HierDiff, HalfSelectedCellsPromoteAndSurvive) {
    const array::ArrayConfig cfg = proposed_array(8, 4);
    array::SramArray flat(cfg);
    MixedArray mixed(cfg);
    const auto data = checker(8, 4);
    ASSERT_TRUE(flat.initialize(data));
    ASSERT_TRUE(mixed.initialize(data));

    const std::size_t row = 2;
    const std::size_t col = 1;
    ASSERT_TRUE(flat.write(row, col, true).ok);
    ASSERT_TRUE(mixed.write(row, col, true).ok);

    // Every half-selected (row, c != col) cell shows up in the event
    // trace as a wordline-edge promotion...
    for (std::size_t c = 0; c < 4; ++c) {
        if (c == col)
            continue;
        const auto& trace = mixed.event_trace();
        const bool promoted = std::any_of(
            trace.begin(), trace.end(), [&](const Event& ev) {
                return ev.kind == EventKind::kPromote && ev.row == row &&
                       ev.col == c &&
                       ev.reason == PromoteReason::kWordlineEdge;
            });
        EXPECT_TRUE(promoted) << "half-selected (" << row << "," << c
                              << ") not promoted";
        // ... and survives the disturb with its data intact, matching
        // the flat reference (protected by the GND-lowering RA).
        EXPECT_EQ(mixed.stored(row, c), data[row][c]);
        EXPECT_EQ(flat.stored(row, c), mixed.stored(row, c));
    }
    expect_same_contents(flat, mixed, "after half-select write");
}

TEST(HierDiff, WriteReadSequenceMatchesFlatOn16x8) {
    const array::ArrayConfig cfg = proposed_array(16, 8);
    array::SramArray flat(cfg);
    MixedArray mixed(cfg);
    const auto data = checker(16, 8);
    ASSERT_TRUE(flat.initialize(data));
    ASSERT_TRUE(mixed.initialize(data));

    const array::OpResult fw = flat.write(9, 5, true);
    const array::OpResult mw = mixed.write(9, 5, true);
    ASSERT_TRUE(fw.ok) << fw.message;
    ASSERT_TRUE(mw.ok) << mw.message;
    const array::ReadResult fr = flat.read(9, 5);
    const array::ReadResult mr = mixed.read(9, 5);
    ASSERT_TRUE(fr.ok) << fr.message;
    ASSERT_TRUE(mr.ok) << mr.message;
    EXPECT_TRUE(fr.value);
    EXPECT_TRUE(mr.value);
    EXPECT_NEAR(fr.differential, mr.differential, kDifferentialTol);
    expect_same_contents(flat, mixed, "after write+read");

    // Exact deterministic counter contract for this sequence: the write
    // promotes the 8-cell row plus 2 sentinels, the read promotes the row
    // only; every promoted cell demotes; each op relinearizes the lumped
    // load of all 8 columns (every column keeps latched cells at 16 rows).
    const HierStats& st = mixed.stats();
    EXPECT_EQ(st.operations, 2u);
    EXPECT_EQ(st.promotions, (8u + 2u) + 8u);
    EXPECT_EQ(st.demotions, (8u + 2u) + 8u);
    EXPECT_EQ(st.relinearizations, 8u + 8u);
    EXPECT_EQ(st.guard_retries, 0u);
}

} // namespace
} // namespace tfetsram::hier
