// Assist-technique tests: classification, level computation for both
// wordline polarities, and the paper's 30 % convention.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sram/assist.hpp"

#include "util/contracts.hpp"

namespace tfetsram::sram {
namespace {

TEST(Assist, Classification) {
    for (Assist a : kWriteAssists) {
        EXPECT_TRUE(is_write_assist(a));
        EXPECT_FALSE(is_read_assist(a));
    }
    for (Assist a : kReadAssists) {
        EXPECT_TRUE(is_read_assist(a));
        EXPECT_FALSE(is_write_assist(a));
    }
    EXPECT_FALSE(is_write_assist(Assist::kNone));
    EXPECT_FALSE(is_read_assist(Assist::kNone));
}

TEST(Assist, NamesAreDistinct) {
    std::set<std::string> names;
    names.insert(to_string(Assist::kNone));
    for (Assist a : kWriteAssists)
        names.insert(to_string(a));
    for (Assist a : kReadAssists)
        names.insert(to_string(a));
    EXPECT_EQ(names.size(), 9u);
}

TEST(AssistLevels, NoneLeavesNominal) {
    const AssistLevels lv = assist_levels(0.8, 0.0, Assist::kNone, 0.3);
    EXPECT_DOUBLE_EQ(lv.vdd, 0.8);
    EXPECT_DOUBLE_EQ(lv.vss, 0.0);
    EXPECT_DOUBLE_EQ(lv.wl_active, 0.0);
    EXPECT_DOUBLE_EQ(lv.bl_high, 0.8);
    EXPECT_DOUBLE_EQ(lv.bl_low, 0.0);
}

TEST(AssistLevels, RailAssists) {
    EXPECT_DOUBLE_EQ(
        assist_levels(0.8, 0.0, Assist::kWaVddLowering, 0.3).vdd, 0.56);
    EXPECT_DOUBLE_EQ(
        assist_levels(0.8, 0.0, Assist::kWaGndRaising, 0.3).vss, 0.24);
    EXPECT_DOUBLE_EQ(
        assist_levels(0.8, 0.0, Assist::kRaVddRaising, 0.3).vdd,
        0.8 + 0.24);
    EXPECT_DOUBLE_EQ(
        assist_levels(0.8, 0.0, Assist::kRaGndLowering, 0.3).vss, -0.24);
}

TEST(AssistLevels, BitlineAssists) {
    EXPECT_DOUBLE_EQ(
        assist_levels(0.8, 0.0, Assist::kWaBitlineRaising, 0.3).bl_high,
        0.8 + 0.24);
    EXPECT_DOUBLE_EQ(
        assist_levels(0.8, 0.0, Assist::kRaBitlineLowering, 0.3).bl_high,
        0.56);
}

TEST(AssistLevels, WordlinePolarityActiveLow) {
    // p-type access: active-low wordline. "Lowering" strengthens (below
    // ground), "raising" weakens (toward VDD) — the paper's Sec. 4 naming.
    const AssistLevels wa =
        assist_levels(0.8, 0.0, Assist::kWaWordlineLowering, 0.3);
    EXPECT_DOUBLE_EQ(wa.wl_active, -0.24);
    const AssistLevels ra =
        assist_levels(0.8, 0.0, Assist::kRaWordlineRaising, 0.3);
    EXPECT_DOUBLE_EQ(ra.wl_active, 0.24);
}

TEST(AssistLevels, WordlinePolarityActiveHigh) {
    // n-type access: the same techniques overdrive above VDD / back off
    // below it (the paper notes CMOS uses WL raising to assist writes).
    const AssistLevels wa =
        assist_levels(0.8, 0.8, Assist::kWaWordlineLowering, 0.3);
    EXPECT_DOUBLE_EQ(wa.wl_active, 0.8 + 0.24);
    const AssistLevels ra =
        assist_levels(0.8, 0.8, Assist::kRaWordlineRaising, 0.3);
    EXPECT_DOUBLE_EQ(ra.wl_active, 0.56);
}

TEST(AssistLevels, FractionScales) {
    const AssistLevels lv10 =
        assist_levels(0.8, 0.0, Assist::kWaVddLowering, 0.1);
    const AssistLevels lv50 =
        assist_levels(0.8, 0.0, Assist::kWaVddLowering, 0.5);
    EXPECT_NEAR(lv10.vdd, 0.72, 1e-12);
    EXPECT_NEAR(lv50.vdd, 0.40, 1e-12);
}

TEST(AssistLevels, RejectsBadInputs) {
    EXPECT_THROW(assist_levels(0.0, 0.0, Assist::kNone, 0.3),
                 contract_violation);
    EXPECT_THROW(assist_levels(0.8, 0.0, Assist::kNone, 1.0),
                 contract_violation);
    EXPECT_THROW(assist_levels(0.8, 0.0, Assist::kNone, -0.1),
                 contract_violation);
}

} // namespace
} // namespace tfetsram::sram
