// Monte-Carlo engine tests: sampler bounds and determinism, metric
// plumbing, and the paper's Sec. 4.3 findings (WLcrit highly sensitive to
// tox variation, DRNM barely).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "mc/monte_carlo.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"

namespace tfetsram::mc {
namespace {

VariationSpec spec() {
    VariationSpec s;
    // Coarser tables keep these tests quick; fidelity is covered elsewhere.
    s.table_spec.points = 121;
    return s;
}

TEST(VariationSampler, ToxWithinBounds) {
    const TfetVariationSampler sampler(spec());
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        const auto draw = sampler.sample(rng);
        EXPECT_GE(draw.tox, 2e-9 * 0.95);
        EXPECT_LE(draw.tox, 2e-9 * 1.05);
    }
}

TEST(VariationSampler, Deterministic) {
    const TfetVariationSampler sampler(spec());
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(sampler.sample(a).tox, sampler.sample(b).tox);
}

TEST(VariationSampler, MosfetsStayNominal) {
    const TfetVariationSampler sampler(spec());
    Rng rng(3);
    const auto d1 = sampler.sample(rng);
    const auto d2 = sampler.sample(rng);
    EXPECT_EQ(d1.models.nmos.get(), d2.models.nmos.get());
    EXPECT_EQ(d1.models.pmos.get(), d2.models.pmos.get());
    EXPECT_NE(d1.models.ntfet.get(), d2.models.ntfet.get());
}

TEST(VariationSampler, PerturbedDeviceShiftsCurrent) {
    const TfetVariationSampler sampler(spec());
    Rng rng(11);
    double lo = 1e9;
    double hi = -1e9;
    for (int i = 0; i < 20; ++i) {
        const auto draw = sampler.sample(rng);
        const double mid = draw.models.ntfet->iv(0.5, 0.8).ids;
        lo = std::min(lo, mid);
        hi = std::max(hi, mid);
    }
    EXPECT_GT(hi / lo, 1.5) << "tox variation must visibly move the I-V";
}

TEST(MonteCarlo, RunsMetricPerSample) {
    sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    const TfetVariationSampler sampler(spec());
    std::atomic<int> calls{0};
    const McResult res = run_monte_carlo(
        cfg, sampler, 8, 99, [&](sram::SramCell& cell) {
            ++calls;
            return cell.config.vdd; // trivially constant metric
        });
    EXPECT_EQ(calls.load(), 8);
    EXPECT_EQ(res.samples.size(), 8u);
    EXPECT_EQ(res.tox_values.size(), 8u);
    EXPECT_DOUBLE_EQ(res.summary.mean, 0.8);
    EXPECT_NEAR(res.summary.stddev, 0.0, 1e-12);
}

TEST(MonteCarlo, SeedReproducible) {
    sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    const TfetVariationSampler sampler(spec());
    const auto metric = [](sram::SramCell& cell) {
        // Proxy metric keyed to the sampled device: mid-swing current.
        return cell.config.models.ntfet->iv(0.5, 0.8).ids;
    };
    const McResult a = run_monte_carlo(cfg, sampler, 6, 1234, metric);
    const McResult b = run_monte_carlo(cfg, sampler, 6, 1234, metric);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(MonteCarlo, HistogramCoversSamples) {
    sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    const TfetVariationSampler sampler(spec());
    const McResult res = run_monte_carlo(
        cfg, sampler, 16, 5,
        [](sram::SramCell& cell) {
            return cell.config.models.ntfet->iv(0.5, 0.8).ids;
        });
    const Histogram h = res.histogram(8);
    EXPECT_EQ(h.total(), 16u);
    EXPECT_EQ(h.underflow() + h.overflow(), 0u);
}

TEST(MonteCarlo, EnvSampleOverride) {
    EXPECT_EQ(mc_samples_from_env(37), 37u); // unset -> fallback
}

TEST(MonteCarlo, ParallelMatchesSerial) {
    // Determinism across thread counts: the draws are pre-generated, so
    // scheduling cannot change the result.
    sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    const TfetVariationSampler sampler(spec());
    const auto metric = [](sram::SramCell& cell) {
        return cell.config.models.ntfet->iv(0.5, 0.8).ids;
    };
    const McResult serial = run_monte_carlo(cfg, sampler, 8, 5, metric, 1);
    const McResult parallel = run_monte_carlo(cfg, sampler, 8, 5, metric, 4);
    EXPECT_EQ(serial.samples, parallel.samples);
    EXPECT_EQ(serial.tox_values, parallel.tox_values);
}

// ---- Sec. 4.3: the paper's sensitivity findings ----

TEST(Sec43Variation, WlcritVariesStronglyDrnmBarely) {
    // "WLcrit varies greatly under process variations ... In contrast, the
    // DRNM is hardly influenced." (beta = 0.6, GND-lowering RA design.)
    sram::CellConfig cfg =
        sram::proposed_design(0.8, device::make_model_set()).config;
    const TfetVariationSampler sampler(spec());
    const sram::MetricOptions opts;

    const McResult wl = run_monte_carlo(
        cfg, sampler, 15, 77, [&](sram::SramCell& cell) {
            return sram::critical_wordline_pulse(cell, sram::Assist::kNone,
                                                 opts);
        });
    const McResult dr = run_monte_carlo(
        cfg, sampler, 15, 77, [&](sram::SramCell& cell) {
            const sram::DrnmResult d = sram::dynamic_read_noise_margin(
                cell, sram::Assist::kRaGndLowering, opts);
            return d.valid ? d.drnm : std::nan("");
        });
    ASSERT_GE(wl.summary.count, 10u);
    ASSERT_GE(dr.summary.count, 10u);
    const double wl_cv = wl.summary.stddev / wl.summary.mean;
    const double dr_cv = dr.summary.stddev / dr.summary.mean;
    EXPECT_GT(wl_cv, 0.08) << "WLcrit should vary strongly with tox";
    EXPECT_LT(dr_cv, 0.05) << "DRNM should be nearly immune";
    EXPECT_GT(wl_cv, 3.0 * dr_cv);
}

} // namespace
} // namespace tfetsram::mc
