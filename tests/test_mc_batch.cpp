// Differential tests for the batched lockstep Monte-Carlo engine
// (src/mc/batch.hpp): on the dense 6T path, lockstep lane reuse must be
// bitwise-invisible — same seeds produce identical per-sample results,
// identical censor/retry bookkeeping, and identical SolverStats counters
// as the serial engine. The one documented divergence (sparse-forced
// cells share one symbolic analysis per lane) is pinned here too.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>

#include "mc/batch.hpp"
#include "mc/monte_carlo.hpp"
#include "spice/context.hpp"
#include "spice/solve_error.hpp"
#include "sram/designs.hpp"
#include "sram/metrics.hpp"

namespace tfetsram::mc {
namespace {

sram::CellConfig test_cell() {
    return sram::proposed_design(0.8, device::make_model_set()).config;
}

VariationSpec coarse_variation() {
    VariationSpec vspec;
    vspec.table_spec.points = 121; // coarse tables keep the test fast
    return vspec;
}

CellMetric hold_power_metric() {
    return [](sram::SramCell& cell) {
        return sram::worst_hold_static_power(cell, sram::MetricOptions{});
    };
}

/// Per-sample results and bookkeeping must match exactly.
void expect_identical_results(const McResult& a, const McResult& b) {
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        if (std::isnan(a.samples[i]))
            EXPECT_TRUE(std::isnan(b.samples[i])) << "sample " << i;
        else
            EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
        EXPECT_EQ(a.tox_values[i], b.tox_values[i]) << "sample " << i;
        EXPECT_EQ(a.censored[i], b.censored[i]) << "sample " << i;
    }
    EXPECT_EQ(a.n_censored, b.n_censored);
    EXPECT_EQ(a.n_retried, b.n_retried);
    EXPECT_EQ(a.summary.count, b.summary.count);
    EXPECT_EQ(a.summary.mean, b.summary.mean);
    EXPECT_EQ(a.summary.stddev, b.summary.stddev);
}

/// The counters the engines must agree on exactly (wall-clock gauges like
/// ordering microseconds excluded by construction).
void expect_identical_counters(const spice::SolverStats& a,
                               const spice::SolverStats& b) {
    EXPECT_EQ(a.nr_iterations, b.nr_iterations);
    EXPECT_EQ(a.dc_solves, b.dc_solves);
    EXPECT_EQ(a.transient_steps, b.transient_steps);
    EXPECT_EQ(a.transient_solves, b.transient_solves);
    EXPECT_EQ(a.assemblies, b.assemblies);
    EXPECT_EQ(a.lu_factorizations, b.lu_factorizations);
    EXPECT_EQ(a.line_search_backtracks, b.line_search_backtracks);
}

TEST(McBatch, DenseBitwiseIdenticalSerialLane) {
    const sram::CellConfig cfg = test_cell();
    const TfetVariationSampler sampler(coarse_variation());
    const CellMetric metric = hold_power_metric();
    constexpr std::size_t kN = 12;
    constexpr std::uint64_t kSeed = 31;

    spice::SimContext serial_ctx{spice::SimConfig{}};
    const McResult serial = run_monte_carlo(serial_ctx, cfg, sampler, kN,
                                            kSeed, metric, /*threads=*/1);
    ASSERT_EQ(serial.n_censored, 0u);

    spice::SimContext batch_ctx{spice::SimConfig{}};
    BatchStats stats;
    const McResult batched =
        run_monte_carlo_batched(batch_ctx, cfg, sampler, kN, kSeed, metric,
                                /*threads=*/1, McPolicy{}, &stats);

    expect_identical_results(serial, batched);
    expect_identical_counters(serial_ctx.stats(), batch_ctx.stats());
    // One persistent lane: one build, every later sample retargeted.
    EXPECT_EQ(stats.lanes, 1u);
    EXPECT_EQ(stats.cell_builds, 1u);
    EXPECT_EQ(stats.model_retargets, kN - 1);
}

TEST(McBatch, DenseBitwiseIdenticalAcrossLaneCounts) {
    const sram::CellConfig cfg = test_cell();
    const TfetVariationSampler sampler(coarse_variation());
    const CellMetric metric = hold_power_metric();
    constexpr std::size_t kN = 12;
    constexpr std::uint64_t kSeed = 77;

    spice::SimContext serial_ctx{spice::SimConfig{}};
    const McResult serial = run_monte_carlo(serial_ctx, cfg, sampler, kN,
                                            kSeed, metric, /*threads=*/1);

    spice::SimContext batch_ctx{spice::SimConfig{}};
    BatchStats stats;
    const McResult batched =
        run_monte_carlo_batched(batch_ctx, cfg, sampler, kN, kSeed, metric,
                                /*threads=*/4, McPolicy{}, &stats);

    expect_identical_results(serial, batched);
    // Counters fold back into the parent in index order, so the totals
    // match the serial run even across 4 lanes.
    expect_identical_counters(serial_ctx.stats(), batch_ctx.stats());
    EXPECT_EQ(stats.lanes, 4u);
    EXPECT_EQ(stats.cell_builds, 4u);
    EXPECT_EQ(stats.model_retargets, kN - 4);
}

TEST(McBatch, TransientMetricIdentical) {
    // WLcrit drives transient solves through the retargeted cell:
    // begin_transient must re-derive companion state identically on a
    // reused cell, or this diverges.
    const sram::CellConfig cfg = test_cell();
    const TfetVariationSampler sampler(coarse_variation());
    const sram::MetricOptions opts;
    const CellMetric metric = [opts](sram::SramCell& cell) {
        return sram::critical_wordline_pulse(cell, sram::Assist::kNone,
                                             opts);
    };
    constexpr std::size_t kN = 6;
    constexpr std::uint64_t kSeed = 19;

    spice::SimContext serial_ctx{spice::SimConfig{}};
    const McResult serial = run_monte_carlo(serial_ctx, cfg, sampler, kN,
                                            kSeed, metric, /*threads=*/1);

    spice::SimContext batch_ctx{spice::SimConfig{}};
    const McResult batched = run_monte_carlo_batched(
        batch_ctx, cfg, sampler, kN, kSeed, metric, /*threads=*/1);

    expect_identical_results(serial, batched);
    expect_identical_counters(serial_ctx.stats(), batch_ctx.stats());
}

TEST(McBatch, RetryAndCensorParity) {
    // A metric that fails on a fixed call schedule: sample 1 needs one
    // retry, sample 3 exhausts every attempt and is censored. With one
    // lane both engines walk the identical call sequence
    // (0, 1, 1, 2, 3, 3, 3, 4, 5), so a shared call counter addresses
    // the same attempts in both runs.
    const sram::CellConfig cfg = test_cell();
    const TfetVariationSampler sampler(coarse_variation());
    constexpr std::size_t kN = 6;
    constexpr std::uint64_t kSeed = 5;

    const auto make_metric = [](int* calls) {
        return [calls](sram::SramCell& cell) {
            const int call = (*calls)++;
            const bool fail =
                call == 1 || call == 4 || call == 5 || call == 6;
            if (fail) {
                spice::SolveError err;
                err.code = spice::SolveErrorCode::kNonConvergence;
                err.message = "injected metric failure";
                throw spice::SolveException(std::move(err));
            }
            return sram::worst_hold_static_power(cell,
                                                 sram::MetricOptions{});
        };
    };

    spice::SimContext serial_ctx{spice::SimConfig{}};
    int serial_calls = 0;
    const McResult serial =
        run_monte_carlo(serial_ctx, cfg, sampler, kN, kSeed,
                        make_metric(&serial_calls), /*threads=*/1);
    EXPECT_EQ(serial_calls, 9);

    spice::SimContext batch_ctx{spice::SimConfig{}};
    int batch_calls = 0;
    const McResult batched = run_monte_carlo_batched(
        batch_ctx, cfg, sampler, kN, kSeed, make_metric(&batch_calls),
        /*threads=*/1);
    EXPECT_EQ(batch_calls, 9);

    const std::array<std::uint8_t, kN> expect_censored = {0, 0, 0, 1, 0, 0};
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(batched.censored[i], expect_censored[i]) << i;
    EXPECT_EQ(batched.n_censored, 1u);
    EXPECT_EQ(batched.n_retried, 2u);
    expect_identical_results(serial, batched);
    expect_identical_counters(serial_ctx.stats(), batch_ctx.stats());
}

TEST(McBatch, SparseForcedSharesSymbolicAnalysisPerLane) {
    // The documented divergence: forcing the sparse kernel on the 6T cell
    // makes the serial engine pay one symbolic analysis per sample (fresh
    // circuit each time) while the lockstep engine pays one per lane and
    // refactors on the reused pivot sequence. Values then agree only to
    // rounding (the pivot order can differ), not bitwise.
    const sram::CellConfig cfg = test_cell();
    const TfetVariationSampler sampler(coarse_variation());
    const CellMetric metric = hold_power_metric();
    constexpr std::size_t kN = 8;
    constexpr std::uint64_t kSeed = 11;

    spice::SimConfig sparse_cfg;
    sparse_cfg.mode = spice::SolverMode::kSparse;

    spice::SimContext serial_ctx{sparse_cfg};
    const McResult serial = run_monte_carlo(serial_ctx, cfg, sampler, kN,
                                            kSeed, metric, /*threads=*/1);
    ASSERT_EQ(serial.n_censored, 0u);

    spice::SimContext batch_ctx{sparse_cfg};
    BatchStats stats;
    const McResult batched =
        run_monte_carlo_batched(batch_ctx, cfg, sampler, kN, kSeed, metric,
                                /*threads=*/1, McPolicy{}, &stats);
    ASSERT_EQ(batched.n_censored, 0u);

    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_NEAR(batched.samples[i], serial.samples[i],
                    1e-9 * std::abs(serial.samples[i]) + 1e-15)
            << "sample " << i;

    // Serial: one analysis per sample plus the nominal warm-start solve.
    // Lockstep: one per lane plus the nominal solve.
    EXPECT_EQ(serial_ctx.stats().sparse_symbolic_analyses, kN + 1);
    EXPECT_EQ(batch_ctx.stats().sparse_symbolic_analyses,
              stats.lanes + 1);
    EXPECT_GT(batch_ctx.stats().sparse_static_pivot_hits, 0u);
}

TEST(McBatch, RebuildEscapeHatchMatchesSerialBuildCounts) {
    // reuse_cells = false must degrade lockstep to serial semantics:
    // every sample is a fresh build, no retargets.
    const sram::CellConfig cfg = test_cell();
    const TfetVariationSampler sampler(coarse_variation());
    constexpr std::size_t kN = 5;
    constexpr std::uint64_t kSeed = 3;

    Rng rng(kSeed);
    std::vector<TfetVariationSampler::Draw> draws;
    for (std::size_t i = 0; i < kN; ++i)
        draws.push_back(sampler.sample(rng));

    spice::SimContext ctx{spice::SimConfig{}};
    const la::Vector seed_x = nominal_hold_seed(ctx, cfg);
    BatchOptions options;
    options.threads = 1;
    options.reuse_cells = false;
    BatchStats stats;
    const McResult res = run_sample_block(ctx, cfg, draws,
                                          hold_power_metric(), seed_x,
                                          options, &stats);
    EXPECT_EQ(res.n_censored, 0u);
    EXPECT_EQ(stats.cell_builds, kN);
    EXPECT_EQ(stats.model_retargets, 0u);
}

} // namespace
} // namespace tfetsram::mc
